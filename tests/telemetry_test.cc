// Unit tests for src/telemetry: histogram bucket boundaries and Welford
// merge, counter/tracer correctness under ThreadPool contention, JSONL
// snapshot shape, and a golden-file check that the emitted Chrome trace
// JSON is well-formed (validated with the minimal parser below — the repo
// deliberately carries no JSON library).
//
// Each TEST runs in its own process (gtest_discover_tests registers them
// individually), so tests may flip the global enable flags freely.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/timeline.h"
#include "telemetry/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tsf::telemetry {
namespace {

// ------------------------------------------------- mini JSON parser ----
// Recursive-descent well-formedness checker: accepts exactly the RFC 8259
// grammar (objects, arrays, strings with escapes, numbers, literals) and
// nothing else. Used to prove the writers emit parseable JSON without
// pulling in a JSON dependency.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek('}')) return true;
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (!Peek(':')) return false;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek('}')) return true;
      if (!Peek(',')) return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek(']')) return true;
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek(']')) return true;
      if (!Peek(',')) return false;
    }
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i)
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_++])))
              return false;
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
    }
    return false;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek('-')) {
    }
    if (!DigitRun()) return false;
    if (Peek('.') && !DigitRun()) return false;
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!Peek('+')) Peek('-');
      if (!DigitRun()) return false;
    }
    return pos_ > start;
  }

  bool DigitRun() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool Peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool IsValidJson(std::string_view text) { return JsonChecker(text).Valid(); }

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("tsf_telemetry_test_") + name))
      .string();
}

TEST(JsonChecker, AcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson(R"({"a":[1,2.5,-3e-2],"b":"x\"\\","c":null})"));
  EXPECT_TRUE(IsValidJson("[]"));
  EXPECT_FALSE(IsValidJson(R"({"a":1,})"));
  EXPECT_FALSE(IsValidJson(R"({"a" 1})"));
  EXPECT_FALSE(IsValidJson(R"(["unterminated)"));
  EXPECT_FALSE(IsValidJson("{} trailing"));
  EXPECT_FALSE(IsValidJson(R"(["bad\escape"])"));
}

// --------------------------------------------------------- histogram ----

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 absorbs everything below 1, including negatives and NaN.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0.999), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-17.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0u);
  // Bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketIndex(1.0), 1u);
  EXPECT_EQ(Histogram::BucketIndex(1.999), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3.999), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4.0), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1024.0), 11u);
  EXPECT_EQ(Histogram::BucketIndex(1023.999), 10u);
  // Every bucket's lower bound maps back to that bucket, and the value just
  // below it maps to the previous one.
  for (std::size_t b = 1; b + 1 < Histogram::kBuckets; ++b) {
    const double low = Histogram::BucketLowerBound(b);
    EXPECT_EQ(Histogram::BucketIndex(low), b) << "bucket " << b;
    EXPECT_EQ(Histogram::BucketIndex(std::nextafter(low, 0.0)), b - 1)
        << "bucket " << b;
  }
  // The top bucket is open-ended: huge values clamp instead of overflowing.
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(std::ldexp(1.0, 100)),
            Histogram::kBuckets - 1);
}

// Reference two-pass moments for a value stream.
HistogramSnapshot Reference(const std::vector<double>& values) {
  HistogramSnapshot ref;
  ref.count = values.size();
  if (values.empty()) return ref;
  double sum = 0.0;
  ref.min = values[0];
  ref.max = values[0];
  for (double v : values) {
    sum += v;
    ref.min = std::min(ref.min, v);
    ref.max = std::max(ref.max, v);
    ref.buckets[Histogram::BucketIndex(v)]++;
  }
  ref.mean = sum / static_cast<double>(values.size());
  for (double v : values) ref.m2 += (v - ref.mean) * (v - ref.mean);
  return ref;
}

void ExpectMomentsNear(const HistogramSnapshot& got,
                       const HistogramSnapshot& want) {
  EXPECT_EQ(got.count, want.count);
  EXPECT_NEAR(got.mean, want.mean, 1e-9 * (1.0 + std::fabs(want.mean)));
  EXPECT_NEAR(got.m2, want.m2, 1e-9 * (1.0 + std::fabs(want.m2)));
  EXPECT_DOUBLE_EQ(got.min, want.min);
  EXPECT_DOUBLE_EQ(got.max, want.max);
  EXPECT_EQ(got.buckets, want.buckets);
}

TEST(Histogram, MergeMatchesConcatenatedStream) {
  std::vector<double> a, b, all;
  for (int i = 0; i < 500; ++i) a.push_back(0.1 * i * i - 3.0);
  for (int i = 0; i < 137; ++i) b.push_back(1000.0 - 7.0 * i);
  all = a;
  all.insert(all.end(), b.begin(), b.end());

  Histogram ha, hb;
  for (double v : a) ha.Record(v);
  for (double v : b) hb.Record(v);
  HistogramSnapshot merged = ha.Snapshot();
  merged.Merge(hb.Snapshot());
  ExpectMomentsNear(merged, Reference(all));

  // Merging into/with an empty snapshot is the identity.
  HistogramSnapshot empty;
  HistogramSnapshot copy = merged;
  copy.Merge(empty);
  ExpectMomentsNear(copy, merged);
  HistogramSnapshot from_empty;
  from_empty.Merge(merged);
  ExpectMomentsNear(from_empty, merged);
}

TEST(Histogram, QuantileEmptyAndSingleSample) {
  EXPECT_EQ(HistogramSnapshot{}.Quantile(0.5), 0.0);
  Histogram h;
  h.Record(7.3);
  const HistogramSnapshot snap = h.Snapshot();
  // One sample: the [min, max] clamp collapses the in-bucket interpolation,
  // so every quantile is exact.
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(snap.Quantile(q), 7.3) << "q=" << q;
}

TEST(Histogram, QuantileBucketBoundaryExactness) {
  // All mass on one power-of-two boundary: the target bucket holds a single
  // distinct value, so estimates are exact at every q.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(8.0);
  const HistogramSnapshot snap = h.Snapshot();
  for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(snap.Quantile(q), 8.0) << "q=" << q;

  // Mass on several boundaries: extreme quantiles pin to min/max exactly,
  // and interior estimates stay inside the true value's bucket (< 2x).
  Histogram spread;
  for (const double v : {1.0, 2.0, 4.0, 8.0})
    for (int i = 0; i < 25; ++i) spread.Record(v);
  const HistogramSnapshot s = spread.Snapshot();
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 8.0);
  const double p60 = s.Quantile(0.60);  // true nearest-rank value: 4
  EXPECT_GE(p60, 2.0);
  EXPECT_LT(p60, 8.0);
}

TEST(Histogram, QuantileWithinFactorTwoOfExact) {
  // Log-uniform samples over [1, 2^20): the documented bound says the
  // estimate shares a log2 bucket with the true quantile, i.e. the ratio
  // between them is < 2 in both directions.
  Rng rng(0x51051ULL);
  std::vector<double> values;
  Histogram h;
  for (int i = 0; i < 10000; ++i) {
    const double v = std::exp2(rng.Uniform(0.0, 20.0));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snap = h.Snapshot();
  for (const double q : {0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = values[static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1))];
    const double estimate = snap.Quantile(q);
    EXPECT_LT(estimate / exact, 2.0) << "q=" << q;
    EXPECT_GT(estimate / exact, 0.5) << "q=" << q;
  }
}

TEST(Histogram, QuantileOfMergeEqualsQuantileOfConcatenation) {
  // Bucket counts and min/max combine losslessly under Merge, so the
  // merge-then-quantile path is bit-identical to recording the
  // concatenated stream into one histogram.
  std::vector<double> a, b;
  Rng rng(20260807);
  for (int i = 0; i < 1000; ++i) a.push_back(rng.Uniform(0.5, 5000.0));
  for (int i = 0; i < 333; ++i) b.push_back(rng.Uniform(100.0, 1e7));
  Histogram ha, hb, hall;
  for (const double v : a) {
    ha.Record(v);
    hall.Record(v);
  }
  for (const double v : b) {
    hb.Record(v);
    hall.Record(v);
  }
  HistogramSnapshot merged = ha.Snapshot();
  merged.Merge(hb.Snapshot());
  const HistogramSnapshot direct = hall.Snapshot();
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(merged.Quantile(q), direct.Quantile(q)) << "q=" << q;
}

TEST(Histogram, ShardedConcurrentRecordHasExactMoments) {
  // ThreadPool workers land on distinct shards; Snapshot's Chan/Welford
  // combine must still reproduce the exact moments of the full stream.
  constexpr std::size_t kValues = 20000;
  std::vector<double> values;
  values.reserve(kValues);
  for (std::size_t i = 0; i < kValues; ++i)
    values.push_back(std::fmod(static_cast<double>(i) * 37.0, 4097.0) - 10.0);

  Histogram hist;
  ThreadPool pool(8);
  pool.ParallelFor(kValues,
                   [&](std::size_t i) { hist.Record(values[i]); });
  ExpectMomentsNear(hist.Snapshot(), Reference(values));
}

// ----------------------------------------------------------- counter ----

TEST(Counter, ExactUnderThreadPoolContention) {
  constexpr std::int64_t kTasks = 64;
  constexpr std::int64_t kAddsPerTask = 10000;
  Counter counter;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](std::size_t) {
    for (std::int64_t i = 0; i < kAddsPerTask; ++i) counter.Add(1);
  });
  EXPECT_EQ(counter.Total(), kTasks * kAddsPerTask);
}

// ---------------------------------------------------------- registry ----

TEST(Registry, MacrosAreNoOpsWhileDisabled) {
  SetEnabled(false);
  for (int pass = 0; pass < 2; ++pass) {
    // Same macro site both times: records only on the enabled pass.
    TSF_COUNTER_ADD("test.toggle", 1);
    TSF_HISTOGRAM_RECORD("test.toggle_hist", 5.0);
    SetEnabled(true);
  }
  SetEnabled(false);
#if defined(TSF_TELEMETRY)
  const MetricsSnapshot snapshot = Registry::Get().Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].first, "test.toggle");
  EXPECT_EQ(snapshot.counters[0].second, 1);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.count, 1u);
#endif
}

TEST(Registry, JsonlSnapshotIsValidJsonPerLine) {
  // Unique prefix so the counts stay right even when other tests in this
  // process have already populated the registry.
  Registry& registry = Registry::Get();
  registry.GetCounter("jsonl.jobs \"done\"\\").Add(42);
  registry.GetGauge("jsonl.depth").Set(3.5);
  Histogram& hist = registry.GetHistogram("jsonl.latency");
  for (double v : {0.5, 1.0, 3.0, 100.0}) hist.Record(v);

  const std::string path = TempPath("metrics.jsonl");
  ASSERT_TRUE(registry.WriteJsonlSnapshot(path));
  std::ifstream file(path);
  std::string line;
  int own_lines = 0;
  bool saw_escaped_counter = false;
  while (std::getline(file, line)) {
    EXPECT_TRUE(IsValidJson(line)) << line;
    if (line.find("jsonl.") != std::string::npos) ++own_lines;
    if (line.find(R"("name":"jsonl.jobs \"done\"\\")") != std::string::npos) {
      saw_escaped_counter = true;
      EXPECT_NE(line.find("\"value\":42"), std::string::npos) << line;
    }
  }
  EXPECT_EQ(own_lines, 3);
  EXPECT_TRUE(saw_escaped_counter);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ tracer ----

TEST(Tracer, SpansRecordedUnderThreadPoolContention) {
  constexpr std::size_t kTasks = 2000;
  Tracer& tracer = Tracer::Get();
  tracer.Start(/*events_per_thread=*/1 << 14);
  {
    ThreadPool pool(8);
    pool.ParallelFor(kTasks, [&](std::size_t i) {
      TSF_TRACE_SCOPE("test", "work");
      TSF_TRACE_INSTANT("test", "tick");
      TSF_TRACE_COUNTER("test", "progress", static_cast<double>(i));
    });
  }
  tracer.Stop();
#if defined(TSF_TELEMETRY)
  // Capacity is ample (8 threads x 16384 slots), so nothing may drop and
  // every record must be present exactly once.
  EXPECT_EQ(tracer.DroppedRecords(), 0u);
  EXPECT_EQ(tracer.BufferedRecords(), 3 * kTasks);

  const std::string path = TempPath("contended_trace.json");
  ASSERT_TRUE(tracer.WriteChromeTrace(path));
  const std::string text = ReadFile(path);
  EXPECT_TRUE(IsValidJson(text));
  std::size_t spans = 0, pos = 0;
  while ((pos = text.find("\"name\":\"work\"", pos)) != std::string::npos) {
    ++spans;
    ++pos;
  }
  EXPECT_EQ(spans, kTasks);
  std::remove(path.c_str());
#else
  EXPECT_EQ(tracer.BufferedRecords(), 0u);
#endif
}

TEST(Tracer, RingOverwritesOldestAndReportsDropped) {
  Tracer& tracer = Tracer::Get();
  tracer.Start(/*events_per_thread=*/16);
  for (int i = 0; i < 100; ++i) tracer.RecordInstant("test", "i");
  tracer.Stop();
  EXPECT_EQ(tracer.BufferedRecords(), 16u);
  EXPECT_EQ(tracer.DroppedRecords(), 84u);

  const std::string path = TempPath("ring_trace.json");
  ASSERT_TRUE(tracer.WriteChromeTrace(path));
  const std::string text = ReadFile(path);
  EXPECT_TRUE(IsValidJson(text));
  EXPECT_NE(text.find("\"dropped_events\":\"84\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Tracer, ChromeTraceGoldenShape) {
  Tracer& tracer = Tracer::Get();
  tracer.Start();
  // One of each phase, plus an interned name with characters that must be
  // escaped for the JSON to stay parseable.
  const std::uint64_t start = tracer.NowNs();
  tracer.RecordComplete("cat", "span", start);
  tracer.RecordInstant("cat", "blip");
  tracer.RecordCounter("cat", "depth", 7.5);
  tracer.RecordInstant("cat", tracer.Intern("cell/\"quoted\"\\policy"));
  tracer.Stop();

  const std::string path = TempPath("golden_trace.json");
  ASSERT_TRUE(tracer.WriteChromeTrace(path));
  const std::string text = ReadFile(path);
  ASSERT_TRUE(IsValidJson(text));

  // Top-level shape Perfetto / chrome://tracing expects.
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);  // process_name meta
  // The complete event carries a duration; the counter carries its value in
  // args; the instant is marked thread-scoped.
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"dur\":"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"value\":7.5"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  // The interned name survived, escaped.
  EXPECT_NE(text.find(R"(cell/\"quoted\"\\policy)"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Tracer, SpanOpenedWhileInactiveStaysSilent) {
  Tracer& tracer = Tracer::Get();
  {
    ScopedSpan span("test", "early");
    tracer.Start();
  }  // closes after Start — must still not record
  tracer.Stop();
  EXPECT_EQ(tracer.BufferedRecords(), 0u);
}

// ---------------------------------------------------------- timeline ----

TEST(Timeline, CsvAndJsonlWriters) {
  const std::vector<FairnessSample> samples = {
      {10.0, 0, 5, 2, 0.25, 0.125},
      {20.0, 1, 3, 0, 0.5, 0.0625},
  };
  const std::string csv_path = TempPath("timeline.csv");
  const std::string jsonl_path = TempPath("timeline.jsonl");
  ASSERT_TRUE(WriteFairnessCsv(csv_path, samples));
  ASSERT_TRUE(WriteFairnessJsonl(jsonl_path, "TSF", samples));

  const std::string csv = ReadFile(csv_path);
  EXPECT_NE(csv.find("time,user,running,pending,dominant_share,task_share"),
            std::string::npos);
  EXPECT_NE(csv.find("20.000000,1,3,0"), std::string::npos);

  std::ifstream jsonl(jsonl_path);
  std::string line;
  int lines = 0;
  while (std::getline(jsonl, line)) {
    ++lines;
    EXPECT_TRUE(IsValidJson(line)) << line;
    EXPECT_NE(line.find("\"policy\":\"TSF\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2);
  std::remove(csv_path.c_str());
  std::remove(jsonl_path.c_str());
}

}  // namespace
}  // namespace tsf::telemetry
