// Determinism of the parallel FREEZE step: fanning freeze probes out over a
// thread pool must produce a FillingResult bit-identical to the serial
// reference — same allocation, freeze rounds, and round levels — because
// every probe is a pure function of the solved round LP and the reduction
// walks users in index order. Also diffs the warm revised engine against the
// dense executable-spec engine on the same seed grid (agreement to LP
// tolerance, not bitwise: the two solvers may pick different optimal
// vertices of degenerate programs).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/offline/multiclass.h"
#include "core/offline/policies.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tsf {
namespace {

SharingProblem RandomSharing(std::size_t users, std::size_t machines,
                             std::uint64_t seed) {
  Rng rng(seed);
  SharingProblem problem;
  for (std::size_t m = 0; m < machines; ++m) {
    ResourceVector capacity(2);
    capacity[0] = rng.Uniform(8.0, 32.0);
    capacity[1] = rng.Uniform(8.0, 64.0);
    problem.cluster.AddMachine(std::move(capacity));
  }
  for (UserId i = 0; i < users; ++i) {
    JobSpec job;
    job.id = i;
    job.name = "u" + std::to_string(i);
    ResourceVector demand(2);
    demand[0] = rng.Uniform(0.5, 4.0);
    demand[1] = rng.Uniform(0.5, 8.0);
    job.demand = std::move(demand);
    std::vector<MachineId> allowed;
    for (MachineId m = 0; m < machines; ++m)
      if (rng.Chance(0.7)) allowed.push_back(m);
    if (allowed.empty()) allowed.push_back(rng.Below(machines));
    if (allowed.size() < machines) job.constraint = Constraint::Whitelist(allowed);
    problem.jobs.push_back(std::move(job));
  }
  return problem;
}

MultiClassProblem RandomMultiClass(std::size_t users, std::size_t machines,
                                   std::uint64_t seed) {
  Rng rng(seed);
  MultiClassProblem problem;
  for (std::size_t m = 0; m < machines; ++m) {
    ResourceVector capacity(2);
    capacity[0] = rng.Uniform(8.0, 24.0);
    capacity[1] = rng.Uniform(8.0, 32.0);
    problem.cluster.AddMachine(std::move(capacity));
  }
  for (UserId i = 0; i < users; ++i) {
    MultiClassJobSpec user;
    user.name = "u" + std::to_string(i);
    const std::size_t classes = static_cast<std::size_t>(rng.Int(1, 3));
    double mix_left = 1.0;
    for (std::size_t c = 0; c < classes; ++c) {
      ResourceVector demand(2);
      demand[0] = rng.Uniform(0.5, 3.0);
      demand[1] = rng.Uniform(0.5, 4.0);
      user.class_demand.push_back(std::move(demand));
      const double mix = c + 1 == classes ? mix_left
                                          : mix_left * rng.Uniform(0.2, 0.6);
      user.class_mix.push_back(mix);
      mix_left -= mix;
    }
    std::vector<MachineId> allowed;
    for (MachineId m = 0; m < machines; ++m)
      if (rng.Chance(0.8)) allowed.push_back(m);
    if (allowed.empty()) allowed.push_back(rng.Below(machines));
    if (allowed.size() < machines) user.constraint = Constraint::Whitelist(allowed);
    problem.users.push_back(std::move(user));
  }
  return problem;
}

void ExpectBitIdentical(const FillingResult& a, const FillingResult& b,
                        const CompiledProblem& problem, std::uint64_t seed) {
  ASSERT_EQ(a.freeze_round, b.freeze_round) << "seed " << seed;
  ASSERT_EQ(a.round_levels, b.round_levels) << "seed " << seed;
  ASSERT_EQ(a.shares, b.shares) << "seed " << seed;
  for (UserId i = 0; i < problem.num_users; ++i)
    for (MachineId m = 0; m < problem.num_machines; ++m)
      ASSERT_EQ(a.allocation.tasks(i, m), b.allocation.tasks(i, m))
          << "seed " << seed << " user " << i << " machine " << m;
}

TEST(FillingDeterminismTest, ParallelFreezeMatchesSerialBitForBit) {
  ThreadPool pool(4);
  FillingOptions parallel;
  parallel.pool = &pool;
  for (const std::size_t users : {3u, 6u, 10u, 14u}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const CompiledProblem problem =
          Compile(RandomSharing(users, users, seed));
      const FillingResult serial = SolveTsf(problem);
      const FillingResult fanned = SolveTsf(problem, parallel);
      ExpectBitIdentical(serial, fanned, problem, seed);
    }
  }
}

TEST(FillingDeterminismTest, SerialProbesFlagForcesReferencePath) {
  ThreadPool pool(4);
  FillingOptions forced_serial;
  forced_serial.pool = &pool;
  forced_serial.serial_probes = true;
  const CompiledProblem problem = Compile(RandomSharing(8, 8, 42));
  const FillingResult serial = SolveTsf(problem);
  const FillingResult forced = SolveTsf(problem, forced_serial);
  ExpectBitIdentical(serial, forced, problem, 42);
}

TEST(FillingDeterminismTest, ParallelMatchesSerialAcrossPolicies) {
  ThreadPool pool(4);
  FillingOptions parallel;
  parallel.pool = &pool;
  const CompiledProblem problem = Compile(RandomSharing(9, 7, 17));
  for (const OfflinePolicy policy :
       {OfflinePolicy::kTsf, OfflinePolicy::kCdrf, OfflinePolicy::kDrfh,
        OfflinePolicy::kPerMachineDrf}) {
    const FillingResult serial = SolveOffline(policy, problem);
    const FillingResult fanned = SolveOffline(policy, problem, 0, parallel);
    ExpectBitIdentical(serial, fanned, problem, 17);
  }
}

TEST(FillingDeterminismTest, MultiClassParallelMatchesSerialBitForBit) {
  ThreadPool pool(4);
  FillingOptions parallel;
  parallel.pool = &pool;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const CompiledMultiClass problem =
        CompileMultiClass(RandomMultiClass(6, 5, seed));
    const MultiClassResult serial = SolveMultiClassTsf(problem);
    const MultiClassResult fanned = SolveMultiClassTsf(problem, parallel);
    ASSERT_EQ(serial.shares, fanned.shares) << "seed " << seed;
    ASSERT_EQ(serial.allocation.tasks, fanned.allocation.tasks)
        << "seed " << seed;
  }
}

TEST(FillingDeterminismTest, WarmEngineAgreesWithDenseSpecEngine) {
  FillingOptions dense;
  dense.use_dense_engine = true;
  for (const std::size_t users : {4u, 8u, 12u}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const CompiledProblem problem =
          Compile(RandomSharing(users, users, seed));
      const FillingResult warm = SolveTsf(problem);
      const FillingResult spec = SolveTsf(problem, dense);
      ASSERT_EQ(warm.round_levels.size(), spec.round_levels.size())
          << "seed " << seed;
      for (std::size_t r = 0; r < warm.round_levels.size(); ++r)
        EXPECT_NEAR(warm.round_levels[r], spec.round_levels[r], 1e-6)
            << "seed " << seed << " round " << r;
      ASSERT_EQ(warm.freeze_round, spec.freeze_round) << "seed " << seed;
      for (UserId i = 0; i < problem.num_users; ++i)
        EXPECT_NEAR(warm.shares[i], spec.shares[i], 1e-6)
            << "seed " << seed << " user " << i;
    }
  }
}

}  // namespace
}  // namespace tsf
