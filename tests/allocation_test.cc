// Unit tests for the Allocation type: accounting, feasibility diagnostics,
// utilization.
#include <gtest/gtest.h>

#include "core/allocation.h"
#include "core/paper_examples.h"

namespace tsf {
namespace {

CompiledProblem Fig4() { return Compile(paper::Fig4()); }

TEST(Allocation, TaskAccounting) {
  Allocation allocation(2, 3);
  allocation.set_tasks(0, 1, 2.5);
  allocation.add_tasks(0, 1, 0.5);
  allocation.add_tasks(0, 2, 1.0);
  EXPECT_DOUBLE_EQ(allocation.tasks(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(allocation.UserTasks(0), 4.0);
  EXPECT_DOUBLE_EQ(allocation.UserTasks(1), 0.0);
}

TEST(Allocation, MachineUsageAndSlack) {
  const CompiledProblem problem = Fig4();
  Allocation allocation(problem.num_users, problem.num_machines);
  allocation.set_tasks(1, 1, 1.0);  // u2's whole machine m2
  const ResourceVector usage = allocation.MachineUsage(1, problem);
  const ResourceVector slack = allocation.MachineSlack(1, problem);
  for (std::size_t r = 0; r < problem.num_resources; ++r)
    EXPECT_NEAR(usage[r] + slack[r], problem.machine_capacity[1][r], 1e-12);
  // u2's single task saturates m2's CPU (3 of 3).
  EXPECT_NEAR(slack[0], 0.0, 1e-12);
}

TEST(Allocation, TaskSharesUseHTimesWeight) {
  CompiledProblem problem = Fig4();
  problem.weight[0] = 2.0;
  Allocation allocation(problem.num_users, problem.num_machines);
  allocation.set_tasks(0, 0, 7.0);
  const std::vector<double> shares = allocation.TaskShares(problem);
  EXPECT_NEAR(shares[0], 7.0 / (14.0 * 2.0), 1e-12);
  EXPECT_DOUBLE_EQ(shares[1], 0.0);
}

TEST(Allocation, FeasibilityDetectsOverCapacity) {
  const CompiledProblem problem = Fig4();
  Allocation allocation(problem.num_users, problem.num_machines);
  allocation.set_tasks(2, 2, 100.0);  // far beyond m3
  std::string error;
  EXPECT_FALSE(allocation.IsFeasible(problem, &error));
  EXPECT_NE(error.find("over capacity"), std::string::npos);
}

TEST(Allocation, FeasibilityDetectsIneligiblePlacement) {
  const CompiledProblem problem = Fig4();
  Allocation allocation(problem.num_users, problem.num_machines);
  allocation.set_tasks(1, 0, 1.0);  // u2 may only use m2
  std::string error;
  EXPECT_FALSE(allocation.IsFeasible(problem, &error));
  EXPECT_NE(error.find("ineligible machine"), std::string::npos);
}

TEST(Allocation, FeasibilityDetectsNegativeTasks) {
  const CompiledProblem problem = Fig4();
  Allocation allocation(problem.num_users, problem.num_machines);
  allocation.set_tasks(0, 0, -1.0);
  std::string error;
  EXPECT_FALSE(allocation.IsFeasible(problem, &error));
  EXPECT_NE(error.find("negative"), std::string::npos);
}

TEST(Allocation, FeasibilityDetectsShapeMismatch) {
  const CompiledProblem problem = Fig4();
  Allocation wrong(problem.num_users + 1, problem.num_machines);
  std::string error;
  EXPECT_FALSE(wrong.IsFeasible(problem, &error));
  EXPECT_NE(error.find("shape"), std::string::npos);
}

TEST(Allocation, UtilizationOfEmptyAndFull) {
  const CompiledProblem problem = Fig4();
  Allocation empty(problem.num_users, problem.num_machines);
  EXPECT_DOUBLE_EQ(empty.Utilization(problem), 0.0);

  // The paper's allocation: 6 + 1 + 3 tasks.
  Allocation paper_allocation(problem.num_users, problem.num_machines);
  paper_allocation.set_tasks(0, 0, 6.0);
  paper_allocation.set_tasks(1, 1, 1.0);
  paper_allocation.set_tasks(2, 2, 3.0);
  // CPU: (6*1 + 1*3 + 3*1) / 21 = 12/21; RAM: (12 + 1 + 12) / 28 = 25/28.
  EXPECT_NEAR(paper_allocation.Utilization(problem, 0), 12.0 / 21.0, 1e-9);
  EXPECT_NEAR(paper_allocation.Utilization(problem, 1), 25.0 / 28.0, 1e-9);
  EXPECT_NEAR(paper_allocation.Utilization(problem),
              0.5 * (12.0 / 21.0 + 25.0 / 28.0), 1e-9);
}

TEST(Allocation, ToStringListsOnlyNonZeroCells) {
  const CompiledProblem problem = Fig4();
  Allocation allocation(problem.num_users, problem.num_machines);
  allocation.set_tasks(0, 0, 2.0);
  const std::string text = allocation.ToString(problem);
  EXPECT_NE(text.find("m0:2.000"), std::string::npos);
  EXPECT_EQ(text.find("m1:"), std::string::npos);
}

}  // namespace
}  // namespace tsf
