// Tests for the property checkers of Sec. III, pinned to the paper's
// counterexamples (Figs. 2 and 3) and to TSF's theorems (1–7).
#include <gtest/gtest.h>

#include "core/offline/policies.h"
#include "core/offline/properties.h"
#include "core/paper_examples.h"

namespace tsf {
namespace {

OfflineSolver TsfSolver() {
  return [](const CompiledProblem& p) { return SolveTsf(p); };
}
OfflineSolver CdrfSolver() {
  return [](const CompiledProblem& p) { return SolveCdrf(p); };
}

// ---------------------------------------------------------------- envy ----

TEST(Envy, CdrfFig3ViolatesEnvyFreeness) {
  const CompiledProblem problem = Compile(paper::Fig3());
  const FillingResult cdrf = SolveCdrf(problem);
  const auto violation = FindEnvy(problem, cdrf.allocation);
  ASSERT_TRUE(violation.has_value());
  // The paper: u1 (index 0) envies u2 (index 1), running 2 tasks from u2's
  // allocation against 1 of its own.
  EXPECT_EQ(violation->envious, 0u);
  EXPECT_EQ(violation->envied, 1u);
  EXPECT_NEAR(violation->own_tasks, 1.0, 1e-5);
  EXPECT_NEAR(violation->exchanged_tasks, 2.0, 1e-5);
}

TEST(Envy, TsfFig3IsEnvyFree) {
  const CompiledProblem problem = Compile(paper::Fig3());
  const FillingResult tsf = SolveTsf(problem);
  EXPECT_FALSE(FindEnvy(problem, tsf.allocation).has_value());
}

TEST(Envy, TsfFig4IsEnvyFree) {
  const CompiledProblem problem = Compile(paper::Fig4());
  const FillingResult tsf = SolveTsf(problem);
  EXPECT_FALSE(FindEnvy(problem, tsf.allocation).has_value());
}

TEST(Envy, RespectsWeightScaling) {
  // One machine, two identical users, weights 2:1 → allocation 2:1 is
  // envy-free *after* weight normalization even though raw counts differ.
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{9.0});
  JobSpec heavy{.id = 0, .name = "heavy", .demand = {1.0}};
  heavy.weight = 2.0;
  JobSpec light{.id = 1, .name = "light", .demand = {1.0}};
  problem.jobs = {heavy, light};
  const CompiledProblem compiled = Compile(problem);
  const FillingResult tsf = SolveTsf(compiled);
  EXPECT_FALSE(FindEnvy(compiled, tsf.allocation).has_value());
}

TEST(DemandExchangeRatio, MatchesLemma1Definition) {
  const CompiledProblem problem = Compile(paper::Fig4());
  // rho_{u2 -> u1}: u2's bundle <3,1> vs u1's demand <1,2> (normalized by
  // the same totals, which cancel in the ratio... they do not cancel — use
  // normalized values): min(d2_cpu/d1_cpu, d2_ram/d1_ram).
  const double expected =
      std::min(problem.demand[1][0] / problem.demand[0][0],
               problem.demand[1][1] / problem.demand[0][1]);
  EXPECT_DOUBLE_EQ(DemandExchangeRatio(problem, 1, 0), expected);
}

// -------------------------------------------------------------- Pareto ----

TEST(Pareto, TsfAllocationsAreParetoOptimal) {
  for (const SharingProblem& sp :
       {paper::Fig2Truthful(), paper::Fig3(), paper::Fig4()}) {
    const CompiledProblem problem = Compile(sp);
    const FillingResult tsf = SolveTsf(problem);
    EXPECT_FALSE(FindParetoImprovement(problem, tsf.allocation).has_value());
  }
}

TEST(Pareto, DetectsDeliberateWaste) {
  const CompiledProblem problem = Compile(paper::Fig4());
  Allocation wasteful(problem.num_users, problem.num_machines);
  wasteful.set_tasks(0, 0, 1.0);  // cluster nearly idle
  const auto violation = FindParetoImprovement(problem, wasteful);
  ASSERT_TRUE(violation.has_value());
  EXPECT_GT(violation->achievable_tasks, violation->current_tasks + 1.0);
}

TEST(Pareto, PerMachineDrfWastesInHeterogeneousCluster) {
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{12.0, 2.0});
  problem.cluster.AddMachine(ResourceVector{2.0, 12.0});
  problem.jobs = {
      JobSpec{.id = 0, .name = "cpu", .demand = {1.0, 0.1}},
      JobSpec{.id = 1, .name = "ram", .demand = {0.1, 1.0}},
  };
  const CompiledProblem compiled = Compile(problem);
  const FillingResult result = SolvePerMachineDrf(compiled);
  EXPECT_TRUE(FindParetoImprovement(compiled, result.allocation).has_value());
}

// ---------------------------------------------------- sharing incentive ----

TEST(SharingIncentive, TsfWithTheorem1WeightsHonorsArbitraryPools) {
  // Fig. 4 cluster; pools: u1 gets all of m1, u2 all of m2, u3 all of m3.
  const CompiledProblem problem = Compile(paper::Fig4());
  DedicatedPools pools;
  pools.fraction.assign(3, std::vector<double>(3, 0.0));
  pools.fraction[0][0] = 1.0;
  pools.fraction[1][1] = 1.0;
  pools.fraction[2][2] = 1.0;
  const auto report = CheckSharingIncentive(problem, pools, TsfSolver(),
                                            /*theorem1_weights=*/true);
  EXPECT_TRUE(report.satisfied) << "violator: user " << report.violator;
  // k = (6, 1, 3) by construction.
  EXPECT_NEAR(report.dedicated_tasks[0], 6.0, 1e-9);
  EXPECT_NEAR(report.dedicated_tasks[1], 1.0, 1e-9);
  EXPECT_NEAR(report.dedicated_tasks[2], 3.0, 1e-9);
}

TEST(SharingIncentive, TsfEqualPartitionEqualWeights) {
  const CompiledProblem problem = Compile(paper::Fig4());
  const auto pools = EqualPartition(problem.num_users, problem.num_machines);
  const auto report = CheckSharingIncentive(problem, pools, TsfSolver(),
                                            /*theorem1_weights=*/true);
  EXPECT_TRUE(report.satisfied) << "violator: user " << report.violator;
}

TEST(SharingIncentive, EqualPartitionHelper) {
  const auto pools = EqualPartition(4, 2);
  ASSERT_EQ(pools.fraction.size(), 4u);
  for (const auto& row : pools.fraction)
    for (const double f : row) EXPECT_DOUBLE_EQ(f, 0.25);
}

TEST(SharingIncentive, DedicatedPoolRespectsConstraints) {
  // A pool slice on an ineligible machine contributes nothing.
  const CompiledProblem problem = Compile(paper::Fig4());
  std::vector<double> fraction = {0.0, 0.0, 1.0};  // all of m3 for u2
  // u2 can only use m2, so its pool tasks are zero.
  EXPECT_DOUBLE_EQ(DedicatedPoolTasks(problem, 1, fraction), 0.0);
}

// ---------------------------------------------------- strategy-proofness ----

TEST(StrategyProofness, CdrfFig2LieIsProfitable) {
  const CompiledProblem problem = Compile(paper::Fig2Truthful());
  Lie lie;
  DynamicBitset all(problem.num_machines);
  all.SetAll();
  lie.eligible = all;
  const auto outcome = ProbeManipulation(problem, 1, lie, CdrfSolver());
  EXPECT_NEAR(outcome.truthful_tasks, 4.0, 1e-5);
  EXPECT_NEAR(outcome.lying_tasks, 6.0, 1e-5);
  EXPECT_TRUE(outcome.profitable());
}

TEST(StrategyProofness, TsfFig2LieIsNotProfitable) {
  const CompiledProblem problem = Compile(paper::Fig2Truthful());
  Lie lie;
  DynamicBitset all(problem.num_machines);
  all.SetAll();
  lie.eligible = all;
  const auto outcome = ProbeManipulation(problem, 1, lie, TsfSolver());
  EXPECT_FALSE(outcome.profitable());
}

TEST(StrategyProofness, TsfDemandInflationIsNotProfitable) {
  const CompiledProblem problem = Compile(paper::Fig4());
  for (UserId liar = 0; liar < problem.num_users; ++liar) {
    Lie lie;
    ResourceVector inflated = problem.demand[liar];
    inflated[0] *= 2.0;  // claim double CPU
    lie.demand = inflated;
    const auto outcome = ProbeManipulation(problem, liar, lie, TsfSolver());
    EXPECT_FALSE(outcome.profitable()) << "user " << liar;
  }
}

TEST(StrategyProofness, TsfConstraintShrinkIsNotProfitable) {
  // Hiding machines (claiming a narrower whitelist) must not help either.
  const CompiledProblem problem = Compile(paper::Fig4());
  Lie lie;
  DynamicBitset only_m1(problem.num_machines);
  only_m1.Set(0);
  lie.eligible = only_m1;
  const auto outcome = ProbeManipulation(problem, 0, lie, TsfSolver());
  EXPECT_FALSE(outcome.profitable());
}

TEST(StrategyProofness, Theorem3WeightsFromPoolsStillRobust) {
  // Thm. 3: weights recomputed as k_i/h_i from pools; lying perturbs both
  // the weight and the share but must not pay off under TSF.
  const CompiledProblem problem = Compile(paper::Fig2Truthful());
  DedicatedPools pools;
  pools.fraction.assign(2, std::vector<double>(2, 0.0));
  pools.fraction[0][0] = 1.0;  // u1 owns m1
  pools.fraction[1][1] = 1.0;  // u2 owns m2
  Lie lie;
  DynamicBitset all(problem.num_machines);
  all.SetAll();
  lie.eligible = all;
  const auto outcome = ProbeManipulation(problem, 1, lie, TsfSolver(),
                                         /*theorem1_weights=*/true, &pools);
  EXPECT_FALSE(outcome.profitable());
}

TEST(ApplyLie, RecomputesMonopolyCounts) {
  const CompiledProblem problem = Compile(paper::Fig2Truthful());
  Lie lie;
  DynamicBitset all(problem.num_machines);
  all.SetAll();
  lie.eligible = all;
  const CompiledProblem lied = ApplyLie(problem, 1, lie);
  EXPECT_NEAR(lied.g[1], 12.0, 1e-9);  // doubled by claiming m1
  EXPECT_NEAR(lied.h[1], problem.h[1], 1e-12);  // h ignores constraints
  // Demand lies rescale h too.
  Lie demand_lie;
  ResourceVector halved = problem.demand[1];
  halved[0] *= 0.5;
  halved[1] *= 0.5;
  demand_lie.demand = halved;
  const CompiledProblem lied2 = ApplyLie(problem, 1, demand_lie);
  EXPECT_NEAR(lied2.h[1], 2.0 * problem.h[1], 1e-9);
}

// -------------------------------------------------------- reductions ----

TEST(Reductions, TsfEqualsDrfOnSingleMachine) {
  // Theorem 6. DRF's canonical example: total <9 CPU, 18 GB>, u1 <1,4>,
  // u2 <3,1>.
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{9.0, 18.0});
  problem.jobs = {
      JobSpec{.id = 0, .name = "u1", .demand = {1.0, 4.0}},
      JobSpec{.id = 1, .name = "u2", .demand = {3.0, 1.0}},
  };
  const CompiledProblem compiled = Compile(problem);
  const FillingResult tsf = SolveTsf(compiled);
  EXPECT_TRUE(MatchesSingleMachineDrf(compiled, tsf));
  // DRF's known solution: u1 three tasks, u2 two tasks.
  EXPECT_NEAR(tsf.allocation.UserTasks(0), 3.0, 1e-5);
  EXPECT_NEAR(tsf.allocation.UserTasks(1), 2.0, 1e-5);
}

TEST(Reductions, TsfEqualsCmmfOnSingleResource) {
  // Theorem 7, on the Fig. 3 single-resource cluster.
  const CompiledProblem problem = Compile(paper::Fig3());
  const FillingResult tsf = SolveTsf(problem);
  EXPECT_TRUE(MatchesSingleResourceCmmf(problem, tsf));
}

TEST(Reductions, CdrfAlsoMatchesDrfOnSingleMachine) {
  // On one machine h == g, so CDRF and TSF coincide (both reduce to DRF).
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{9.0, 18.0});
  problem.jobs = {
      JobSpec{.id = 0, .name = "u1", .demand = {1.0, 4.0}},
      JobSpec{.id = 1, .name = "u2", .demand = {3.0, 1.0}},
  };
  const CompiledProblem compiled = Compile(problem);
  EXPECT_TRUE(MatchesSingleMachineDrf(compiled, SolveCdrf(compiled)));
}

TEST(Reductions, DrfhDoesNotReduceToCmmfUnderConstraints) {
  // Table I: DRFH lacks single-resource fairness in the presence of
  // constraints — its dominant-share denominator ignores eligibility, so on
  // Fig. 3 it treats u2 like everyone else and the allocations differ from
  // CMMF... actually with unit demands DRFH == CMMF here; use unequal
  // demands to expose the difference.
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{6.0});
  problem.cluster.AddMachine(ResourceVector{2.0});
  JobSpec big{.id = 0, .name = "big", .demand = {2.0}};
  big.constraint = Constraint::Whitelist({0});
  JobSpec small{.id = 1, .name = "small", .demand = {1.0}};
  problem.jobs = {big, small};
  const CompiledProblem compiled = Compile(problem);
  // Both reduce to max-min on the single resource here; this documents the
  // case where they *agree*, guarding the checker against false positives.
  EXPECT_TRUE(MatchesSingleResourceCmmf(compiled, SolveCmmf(compiled, 0)));
}

}  // namespace
}  // namespace tsf
