// Chaos fuzz suites (label: slow). Seeded fault-injected scenarios on both
// substrates with every invariant armed, the incremental-vs-reference
// differential under faults, and post-quiescence fairness convergence.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "chaos/fault_plan.h"
#include "chaos/scenario.h"
#include "core/online/policy.h"
#include "sim/des.h"

namespace tsf::chaos {
namespace {

// First index where the two streams differ, rendered for a test message.
std::string FirstDivergence(const std::vector<StreamEvent>& a,
                            const std::vector<StreamEvent>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i)
    if (!(a[i] == b[i])) {
      std::ostringstream out;
      out << "first divergence at event #" << i << ": incremental='"
          << FormatStreamEvent(a[i]) << "' reference='"
          << FormatStreamEvent(b[i]) << "'";
      return out.str();
    }
  std::ostringstream out;
  out << "streams agree on the first " << n << " events; lengths " << a.size()
      << " vs " << b.size();
  return out.str();
}

class DesChaosFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesChaosFuzz, InvariantsHoldUnderFaultsForEveryPolicy) {
  const DesScenario scenario = RandomDesScenario(GetParam());
  for (const OnlinePolicy& policy : AllOnlinePolicies()) {
    const ScenarioReport report =
        RunDesScenario(scenario.workload, policy, scenario.plan);
    EXPECT_TRUE(report.ok())
        << policy.name << ": " << ToString(report.violations.front());
  }
}

// The retained linear-scan core must emit a bit-identical stream to the
// heap-based production core — now also with crashes, restarts, and task
// failures interleaved.
TEST_P(DesChaosFuzz, IncrementalAndReferenceCoresAgreeUnderFaults) {
  const DesScenario scenario = RandomDesScenario(GetParam());
  for (const OnlinePolicy& policy : AllOnlinePolicies()) {
    const ScenarioReport incremental = RunDesScenario(
        scenario.workload, policy, scenario.plan, SimCore::kIncremental);
    const ScenarioReport reference = RunDesScenario(
        scenario.workload, policy, scenario.plan, SimCore::kReference);
    EXPECT_EQ(incremental.stream_hash, reference.stream_hash)
        << policy.name << ": "
        << FirstDivergence(incremental.stream, reference.stream);
  }
}

class MesosChaosFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MesosChaosFuzz, InvariantsHoldUnderFaults) {
  const MesosScenario scenario = RandomMesosScenario(GetParam());
  const ScenarioReport report = RunMesosScenario(scenario);
  EXPECT_TRUE(report.ok()) << ToString(report.violations.front());
  // Replays are deterministic: same scenario, same stream.
  EXPECT_EQ(RunMesosScenario(scenario).stream_hash, report.stream_hash);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesChaosFuzz, ::testing::Range<std::uint64_t>(1, 25));
INSTANTIATE_TEST_SUITE_P(Seeds, MesosChaosFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

// After the last outage lifts and while every job still has pending work,
// the faulted online run must drift back to the offline ProgressiveFilling
// fair point (DESIGN.md §9's fairness-convergence invariant).
TEST(FairnessConvergenceTest, TsfRecoversOfflineSharesAfterOutage) {
  Workload workload;
  workload.cluster.AddMachine(ResourceVector{8.0, 8.0});
  workload.cluster.AddMachine(ResourceVector{8.0, 8.0});
  for (std::size_t j = 0; j < 3; ++j) {
    JobSpec spec;
    spec.id = j;
    spec.demand = ResourceVector{1.0, 1.0};
    spec.num_tasks = 400;
    spec.arrival_time = 0.0;
    workload.jobs.push_back(MakeUniformJob(spec, 1.0));
  }

  FaultPlan plan;
  plan.events.push_back(FaultSpec{5.0, FaultKind::kMachineCrash, 1, 0.0});
  plan.events.push_back(FaultSpec{15.0, FaultKind::kMachineRestart, 1, 0.0});
  ASSERT_EQ(ValidateFaultPlan(plan, 2, 0), "");

  SimOptions options;
  options.fairness_sample_interval = 0.5;
  options.faults = CompileForDes(plan);
  const SimResult result = Simulate(workload, OnlinePolicy::Tsf(),
                                    SimCore::kIncremental, options);

  // Sample window: well past the restart, well before the first job drains
  // (3 * 400 task-seconds over 16 slots ≈ 75 s makespan).
  const double recovered = FairnessGap(workload, result, 30.0, 60.0);
  EXPECT_LT(recovered, 0.25) << "post-recovery fairness gap " << recovered;
}

}  // namespace
}  // namespace tsf::chaos
