// Tests for the offline policy family: CDRF, DRFH, per-machine DRF, CMMF.
#include <gtest/gtest.h>

#include "core/offline/policies.h"
#include "core/paper_examples.h"

namespace tsf {
namespace {

TEST(Cdrf, Fig2TruthfulAllocationMatchesPaper) {
  const CompiledProblem problem = Compile(paper::Fig2Truthful());
  EXPECT_NEAR(problem.g[0], 18.0, 1e-9);
  EXPECT_NEAR(problem.g[1], 6.0, 1e-9);
  const FillingResult result = SolveCdrf(problem);
  EXPECT_NEAR(result.allocation.UserTasks(0), paper::kFig2CdrfTasksU1, 1e-5);
  EXPECT_NEAR(result.allocation.UserTasks(1), paper::kFig2CdrfTasksU2, 1e-5);
  // Work slowdown equalized at 2/3.
  EXPECT_NEAR(result.shares[0], 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(result.shares[1], 2.0 / 3.0, 1e-6);
}

TEST(Cdrf, Fig2LieRaisesU2Allocation) {
  // The paper's strategy-proofness counterexample: claiming m1 raises u2
  // from 4 to 6 tasks under constrained CDRF.
  const CompiledProblem lied = Compile(paper::Fig2Lie());
  EXPECT_NEAR(lied.g[1], 12.0, 1e-9);  // claimed monopoly doubles
  const FillingResult result = SolveCdrf(lied);
  EXPECT_NEAR(result.allocation.UserTasks(1), paper::kFig2LieCdrfTasksU2, 1e-5);
  EXPECT_NEAR(result.allocation.UserTasks(0), 9.0, 1e-5);
  // All of u2's tasks still land on m2 — the claim was pure manipulation.
  EXPECT_NEAR(result.allocation.tasks(1, 0), 0.0, 1e-5);
}

TEST(Cdrf, Fig3AllocationMatchesPaper) {
  const CompiledProblem problem = Compile(paper::Fig3());
  const FillingResult result = SolveCdrf(problem);
  // Everyone's slowdown equalizes at 1/3: u2 gets 3 tasks, others 1.
  for (UserId i = 0; i < 7; ++i) {
    const double expected = i == 1 ? 3.0 : 1.0;
    EXPECT_NEAR(result.allocation.UserTasks(i), expected, 1e-5) << "user " << i;
    EXPECT_NEAR(result.shares[i], 1.0 / 3.0, 1e-6) << "user " << i;
  }
}

TEST(Tsf, Fig3AllocationIsEnvyFreeVariant) {
  // Under TSF the flexible user no longer crowds m1: everyone on m1/m2
  // stabilizes at 1.5 tasks, m3 users at 1.
  const CompiledProblem problem = Compile(paper::Fig3());
  const FillingResult result = SolveTsf(problem);
  EXPECT_NEAR(result.allocation.UserTasks(0), 1.5, 1e-5);
  EXPECT_NEAR(result.allocation.UserTasks(1), 1.5, 1e-5);
  EXPECT_NEAR(result.allocation.UserTasks(2), 1.5, 1e-5);
  EXPECT_NEAR(result.allocation.UserTasks(3), 1.5, 1e-5);
  for (UserId i = 4; i < 7; ++i)
    EXPECT_NEAR(result.allocation.UserTasks(i), 1.0, 1e-5);
}

TEST(Drfh, EqualizesGlobalDominantShares) {
  // Two machines <10,10> normalized total <20,20>; u1 dominant CPU, u2
  // dominant RAM. DRFH should equalize n_i * max_r d_ir.
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{10.0, 10.0});
  problem.cluster.AddMachine(ResourceVector{10.0, 10.0});
  problem.jobs = {
      JobSpec{.id = 0, .name = "cpu", .demand = {2.0, 1.0}},
      JobSpec{.id = 1, .name = "ram", .demand = {1.0, 2.0}},
  };
  const CompiledProblem compiled = Compile(problem);
  const FillingResult result = SolveDrfh(compiled);
  std::string error;
  ASSERT_TRUE(result.allocation.IsFeasible(compiled, &error)) << error;
  const double s0 =
      result.allocation.UserTasks(0) * compiled.demand[0].MaxComponent();
  const double s1 =
      result.allocation.UserTasks(1) * compiled.demand[1].MaxComponent();
  EXPECT_NEAR(s0, s1, 1e-6);
  // Symmetric demands: 20 CPU & 20 GB shared; n*2/20 equal, capacity binds
  // when both run 20/3 tasks.
  EXPECT_NEAR(result.allocation.UserTasks(0), 20.0 / 3.0, 1e-4);
}

TEST(PerMachineDrf, SplitsEachMachineAmongEligibleUsers) {
  // m1 shared by u1,u2; m2 exclusive to u1 (by constraint). Per-machine DRF
  // halves m1 and hands m2 wholly to u1.
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{8.0});
  problem.cluster.AddMachine(ResourceVector{4.0});
  JobSpec u1{.id = 0, .name = "u1", .demand = {1.0}};
  JobSpec u2{.id = 1, .name = "u2", .demand = {1.0}};
  u2.constraint = Constraint::Whitelist({0});
  problem.jobs = {u1, u2};
  const CompiledProblem compiled = Compile(problem);
  const FillingResult result = SolvePerMachineDrf(compiled);
  EXPECT_NEAR(result.allocation.tasks(0, 0), 4.0, 1e-6);
  EXPECT_NEAR(result.allocation.tasks(1, 0), 4.0, 1e-6);
  EXPECT_NEAR(result.allocation.tasks(0, 1), 4.0, 1e-6);
}

TEST(PerMachineDrf, WastesCapacityWithoutGlobalView) {
  // The classic Pareto violation (Sec. IV-B1): u1 is CPU-heavy, u2 is
  // RAM-heavy, but per-machine DRF splits *every* machine evenly instead of
  // specializing, leaving both resources fragmented.
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{12.0, 2.0});   // CPU-rich
  problem.cluster.AddMachine(ResourceVector{2.0, 12.0});   // RAM-rich
  problem.jobs = {
      JobSpec{.id = 0, .name = "cpu", .demand = {1.0, 0.1}},
      JobSpec{.id = 1, .name = "ram", .demand = {0.1, 1.0}},
  };
  const CompiledProblem compiled = Compile(problem);
  const FillingResult per_machine = SolvePerMachineDrf(compiled);
  const FillingResult tsf = SolveTsf(compiled);
  const double per_machine_total = per_machine.allocation.UserTasks(0) +
                                   per_machine.allocation.UserTasks(1);
  const double tsf_total =
      tsf.allocation.UserTasks(0) + tsf.allocation.UserTasks(1);
  EXPECT_LT(per_machine_total, tsf_total - 1.0);
}

TEST(Cmmf, SingleResourceMaxMin) {
  // 3 machines x 3 CPUs as in Fig. 3 — CMMF over the only resource matches
  // Choosy's constrained max-min fairness.
  const CompiledProblem problem = Compile(paper::Fig3());
  const FillingResult result = SolveCmmf(problem, 0);
  std::string error;
  ASSERT_TRUE(result.allocation.IsFeasible(problem, &error)) << error;
  // Max-min on tasks directly: m3's trio caps at 1 each; u1/u3/u4 reach 1.5
  // with u2 (see the TSF working in policies_test — same numbers because
  // demands are unit).
  EXPECT_NEAR(result.allocation.UserTasks(4), 1.0, 1e-5);
  EXPECT_NEAR(result.allocation.UserTasks(0), 1.5, 1e-5);
}

TEST(Cmmf, WeightedUsersGetProportionalShares) {
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{10.0});
  JobSpec a{.id = 0, .name = "a", .demand = {1.0}};
  a.weight = 4.0;
  JobSpec b{.id = 1, .name = "b", .demand = {1.0}};
  b.weight = 1.0;
  problem.jobs = {a, b};
  const CompiledProblem compiled = Compile(problem);
  const FillingResult result = SolveCmmf(compiled, 0);
  EXPECT_NEAR(result.allocation.UserTasks(0), 8.0, 1e-5);
  EXPECT_NEAR(result.allocation.UserTasks(1), 2.0, 1e-5);
}

TEST(CmmfDeathTest, RequiresDemandInTheSharedResource) {
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{4.0, 4.0});
  problem.jobs = {JobSpec{.id = 0, .name = "noram", .demand = {1.0, 0.0}}};
  const CompiledProblem compiled = Compile(problem);
  EXPECT_DEATH(SolveCmmf(compiled, 1), "requires every user to demand it");
}

TEST(SolveOffline, DispatchesEveryPolicy) {
  const CompiledProblem problem = Compile(paper::Fig4());
  for (const OfflinePolicy policy :
       {OfflinePolicy::kTsf, OfflinePolicy::kCdrf, OfflinePolicy::kDrfh,
        OfflinePolicy::kPerMachineDrf, OfflinePolicy::kCmmf}) {
    const FillingResult result = SolveOffline(policy, problem, 0);
    std::string error;
    EXPECT_TRUE(result.allocation.IsFeasible(problem, &error))
        << ToString(policy) << ": " << error;
    double total = 0;
    for (UserId i = 0; i < problem.num_users; ++i)
      total += result.allocation.UserTasks(i);
    EXPECT_GT(total, 0.0) << ToString(policy);
  }
}

TEST(PolicyNames, AreStable) {
  EXPECT_EQ(ToString(OfflinePolicy::kTsf), "TSF");
  EXPECT_EQ(ToString(OfflinePolicy::kCdrf), "CDRF");
  EXPECT_EQ(ToString(OfflinePolicy::kDrfh), "DRFH");
  EXPECT_EQ(ToString(OfflinePolicy::kPerMachineDrf), "PerMachineDRF");
  EXPECT_EQ(ToString(OfflinePolicy::kCmmf), "CMMF");
}

}  // namespace
}  // namespace tsf
