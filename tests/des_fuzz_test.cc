// Randomized stress tests of the discrete-event simulator: on arbitrary
// workloads the DES must uphold its invariants for every policy —
// conservation of tasks, capacity never exceeded, non-preemption, and
// work conservation (no task waits while an eligible machine could hold it).
#include <gtest/gtest.h>

#include <map>

#include "sim/des.h"
#include "util/rng.h"

namespace tsf {
namespace {

Workload RandomWorkload(std::uint64_t seed) {
  Rng rng(seed);
  Workload workload;
  const auto machines = static_cast<std::size_t>(rng.Int(2, 6));
  for (std::size_t m = 0; m < machines; ++m)
    workload.cluster.AddMachine(ResourceVector(std::vector<double>{
        rng.Uniform(2.0, 8.0), rng.Uniform(2.0, 8.0)}));
  const auto jobs = static_cast<std::size_t>(rng.Int(2, 8));
  for (UserId i = 0; i < jobs; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.name = "j" + std::to_string(i);
    // Demands guaranteed to fit the smallest possible machine (2.0).
    spec.demand = ResourceVector(std::vector<double>{
        rng.Uniform(0.3, 2.0), rng.Uniform(0.3, 2.0)});
    spec.arrival_time = rng.Uniform(0.0, 20.0);
    spec.num_tasks = rng.Int(1, 30);
    spec.weight = rng.Chance(0.5) ? 1.0 : rng.Uniform(0.5, 4.0);
    if (rng.Chance(0.5)) {
      std::vector<MachineId> allowed;
      for (MachineId m = 0; m < machines; ++m)
        if (rng.Chance(0.6)) allowed.push_back(m);
      if (allowed.empty()) allowed.push_back(rng.Below(machines));
      spec.constraint = Constraint::Whitelist(allowed);
    }
    workload.jobs.push_back(
        MakeJitteredJob(std::move(spec), rng.Uniform(2.0, 15.0), 0.2, rng()));
  }
  std::sort(workload.jobs.begin(), workload.jobs.end(),
            [](const SimJob& a, const SimJob& b) {
              return a.spec.arrival_time < b.spec.arrival_time;
            });
  for (std::size_t j = 0; j < workload.jobs.size(); ++j)
    workload.jobs[j].spec.id = j;
  return workload;
}

std::vector<OnlinePolicy> AllPolicies() {
  return {OnlinePolicy::Fifo(),         OnlinePolicy::Drf(),
          OnlinePolicy::Cdrf(),         OnlinePolicy::Cmmf(0, "CPU"),
          OnlinePolicy::Cmmf(1, "Mem"), OnlinePolicy::Tsf()};
}

class DesFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesFuzz, TasksConservedAndTimingSane) {
  const Workload workload = RandomWorkload(GetParam());
  for (const OnlinePolicy& policy : AllPolicies()) {
    const SimResult result = Simulate(workload, policy);
    ASSERT_EQ(result.tasks.size(), workload.TotalTasks()) << policy.name;
    std::map<std::size_t, long> per_job;
    for (const TaskRecord& task : result.tasks) {
      ++per_job[task.job];
      EXPECT_GE(task.schedule, task.submit) << policy.name;
      EXPECT_GT(task.finish, task.schedule) << policy.name;
      EXPECT_LE(task.finish, result.makespan + 1e-9) << policy.name;
    }
    for (std::size_t j = 0; j < workload.jobs.size(); ++j)
      EXPECT_EQ(per_job[j], workload.jobs[j].spec.num_tasks) << policy.name;
  }
}

TEST_P(DesFuzz, CapacityNeverExceeded) {
  const Workload workload = RandomWorkload(GetParam() + 1000);
  const SimResult result = Simulate(workload, OnlinePolicy::Tsf());

  // Without per-task machine ids in the records we check the cluster-wide
  // aggregate at every schedule instant: total demand of concurrently
  // running tasks must fit the cluster totals.
  const ResourceVector total = workload.cluster.total();
  for (const TaskRecord& probe : result.tasks) {
    const double t = probe.schedule;
    ResourceVector in_use(total.dimension());
    for (const TaskRecord& task : result.tasks)
      if (task.schedule <= t && task.finish > t)
        in_use += workload.jobs[task.job].spec.demand;
    for (std::size_t r = 0; r < total.dimension(); ++r)
      EXPECT_LE(in_use[r], total[r] + 1e-6);
  }
}

TEST_P(DesFuzz, WorkConservingAtScheduleInstants) {
  // Weak work-conservation probe: whenever a task is scheduled strictly
  // after its submit time, some capacity event must have occurred in
  // between — i.e. the task was not simply forgotten. We verify each
  // delayed task starts exactly at another task's finish time or at its
  // job's arrival batch instant.
  const Workload workload = RandomWorkload(GetParam() + 2000);
  for (const OnlinePolicy& policy : AllPolicies()) {
    const SimResult result = Simulate(workload, policy);
    std::vector<double> finish_times;
    for (const TaskRecord& task : result.tasks)
      finish_times.push_back(task.finish);
    std::sort(finish_times.begin(), finish_times.end());
    for (const TaskRecord& task : result.tasks) {
      if (task.schedule <= task.submit + 1e-12) continue;
      const bool at_finish = std::binary_search(
          finish_times.begin(), finish_times.end(), task.schedule);
      EXPECT_TRUE(at_finish)
          << policy.name << ": task of job " << task.job
          << " scheduled at " << task.schedule
          << " which is neither its arrival nor a completion instant";
    }
  }
}

TEST_P(DesFuzz, IncrementalCoreMatchesReferenceCore) {
  // End-to-end differential check of the incremental scheduling core: the
  // heap-based scheduler and the naive linear-scan reference must produce
  // the *same simulation*, task for task, for every policy. Times are
  // compared with EXPECT_EQ (bit identity), not a tolerance — both cores
  // compute keys as running × ShareCoefficient, so any divergence means a
  // real behavioral difference, not float noise.
  // 20 seeds x 6 policies = 120 randomized end-to-end combos.
  const Workload workload = RandomWorkload(GetParam() + 4000);
  for (const OnlinePolicy& policy : AllPolicies()) {
    const SimResult fast = Simulate(workload, policy, SimCore::kIncremental);
    const SimResult ref = Simulate(workload, policy, SimCore::kReference);
    ASSERT_EQ(fast.tasks.size(), ref.tasks.size()) << policy.name;
    EXPECT_EQ(fast.makespan, ref.makespan) << policy.name;
    for (std::size_t t = 0; t < fast.tasks.size(); ++t) {
      ASSERT_EQ(fast.tasks[t].job, ref.tasks[t].job) << policy.name;
      ASSERT_EQ(fast.tasks[t].index, ref.tasks[t].index) << policy.name;
      ASSERT_EQ(fast.tasks[t].schedule, ref.tasks[t].schedule)
          << policy.name << " task " << t;
      ASSERT_EQ(fast.tasks[t].finish, ref.tasks[t].finish)
          << policy.name << " task " << t;
    }
    ASSERT_EQ(fast.jobs.size(), ref.jobs.size());
    for (std::size_t j = 0; j < fast.jobs.size(); ++j) {
      EXPECT_EQ(fast.jobs[j].first_schedule, ref.jobs[j].first_schedule)
          << policy.name << " job " << j;
      EXPECT_EQ(fast.jobs[j].completion, ref.jobs[j].completion)
          << policy.name << " job " << j;
    }
  }
}

TEST_P(DesFuzz, DeterministicAcrossRuns) {
  const Workload workload = RandomWorkload(GetParam() + 3000);
  const SimResult a = Simulate(workload, OnlinePolicy::Tsf());
  const SimResult b = Simulate(workload, OnlinePolicy::Tsf());
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t t = 0; t < a.tasks.size(); ++t) {
    EXPECT_DOUBLE_EQ(a.tasks[t].schedule, b.tasks[t].schedule);
    EXPECT_DOUBLE_EQ(a.tasks[t].finish, b.tasks[t].finish);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace tsf
