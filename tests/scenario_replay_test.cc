// Replays every committed repro under tests/repros/ and checks it still
// reproduces: the violation class recorded when the repro was minted must
// still fire, deterministically, from nothing but the repro file. Keeps
// shipped repros evergreen — a repro that stops reproducing (because the
// underlying bug class changed shape) fails here and must be re-minted.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/repro.h"

namespace tsf::chaos {
namespace {

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::filesystem::path> CommittedFiles(const char* dir) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".txt") paths.push_back(entry.path());
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::vector<std::filesystem::path> CommittedRepros() {
  return CommittedFiles(TSF_REPRO_DIR);
}

// "[invariant_id] ..." -> "invariant_id"; empty if no bracketed prefix.
std::string RecordedInvariant(const std::string& violation) {
  if (violation.size() < 2 || violation.front() != '[') return "";
  const std::size_t close = violation.find(']');
  if (close == std::string::npos) return "";
  return violation.substr(1, close - 1);
}

TEST(ScenarioReplayTest, EveryCommittedReproStillReproduces) {
  const std::vector<std::filesystem::path> paths = CommittedRepros();
  ASSERT_FALSE(paths.empty()) << "no repros committed under " << TSF_REPRO_DIR;
  for (const std::filesystem::path& path : paths) {
    SCOPED_TRACE(path.filename().string());
    const Repro repro = ParseRepro(ReadFile(path));
    const std::vector<Violation> violations = ReplayRepro(repro);
    ASSERT_FALSE(violations.empty()) << "repro no longer reproduces";
    const std::string expected = RecordedInvariant(repro.violation);
    if (!expected.empty()) {
      bool found = false;
      for (const Violation& violation : violations)
        found = found || violation.invariant == expected;
      EXPECT_TRUE(found) << "recorded invariant '" << expected
                         << "' no longer fires; first is now "
                         << ToString(violations.front());
    }
    // Replays are deterministic: run twice, same violation list.
    const std::vector<Violation> again = ReplayRepro(repro);
    ASSERT_EQ(again.size(), violations.size());
    for (std::size_t i = 0; i < violations.size(); ++i)
      EXPECT_EQ(ToString(again[i]), ToString(violations[i]));
  }
}

// The shrinker-demo repro: the deliberately injected task-leak-on-crash
// bug, ddmin-reduced to a single crash/restart atom. Guards both the
// shrinker (the plan must stay minimal) and the checker (the leak class
// must stay detected).
TEST(ScenarioReplayTest, LeakTaskOnCrashReproIsMinimalAndCaught) {
  const std::filesystem::path path =
      std::filesystem::path(TSF_REPRO_DIR) / "leak_task_on_crash.txt";
  const Repro repro = ParseRepro(ReadFile(path));
  EXPECT_EQ(repro.injected_bug, "leak_task_on_crash");
  EXPECT_LE(repro.plan.events.size(), 5u) << "shrunk plan is not minimal";
  const std::vector<Violation> violations = ReplayRepro(repro);
  ASSERT_FALSE(violations.empty());
  bool found = false;
  for (const Violation& violation : violations)
    found = found || violation.invariant == "task_survived_crash";
  EXPECT_TRUE(found) << "leak no longer detected; first violation is "
                     << ToString(violations.front());
}

// The guided fuzzer's committed corpus (tests/corpus/) is the dual of the
// repro set: every entry must replay violation-FREE at head, on its own
// substrate, from nothing but the file. An entry that starts violating
// means a real (or re-planted) bug — fix it or re-mint the corpus; an entry
// that stops parsing or round-tripping is stale against the text format.
TEST(ScenarioReplayTest, EveryCorpusEntryReplaysViolationFree) {
  const std::vector<std::filesystem::path> paths =
      CommittedFiles(TSF_CORPUS_DIR);
  ASSERT_FALSE(paths.empty()) << "no corpus committed under " << TSF_CORPUS_DIR;
  bool saw_des = false;
  bool saw_mesos = false;
  for (const std::filesystem::path& path : paths) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = ReadFile(path);
    const Repro entry = ParseRepro(text);
    saw_des = saw_des || entry.substrate == "des" ||
              entry.substrate == "des-uniform";
    saw_mesos = saw_mesos || entry.substrate == "mesos";
    // Staleness guard: the committed bytes are exactly what the current
    // format writes (same fixed point the repro files rely on).
    EXPECT_EQ(SerializeRepro(entry), text) << "entry is stale — regenerate "
                                              "with fuzz_scenarios "
                                              "--guided --corpus_out";
    // Minimality guard: corpus plans stay within the search's atom cap
    // (16 atoms, each at most an open/close pair).
    EXPECT_LE(entry.plan.events.size(), 32u);
    EXPECT_TRUE(entry.violation.empty());
    EXPECT_EQ(entry.injected_bug, "none");
    const std::vector<Violation> violations = ReplayRepro(entry);
    EXPECT_TRUE(violations.empty())
        << "corpus entry violates at head: " << ToString(violations.front());
  }
  // The corpus seeds both substrates' searches; losing one side silently
  // would blind future guided runs on that substrate.
  EXPECT_TRUE(saw_des) << "no DES entries in the committed corpus";
  EXPECT_TRUE(saw_mesos) << "no Mesos entries in the committed corpus";
}

}  // namespace
}  // namespace tsf::chaos
