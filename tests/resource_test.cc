// Unit tests for ResourceVector.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/resource.h"

namespace tsf {
namespace {

TEST(ResourceVector, ZeroConstruction) {
  const ResourceVector v(3);
  EXPECT_EQ(v.dimension(), 3u);
  EXPECT_TRUE(v.IsZero());
  EXPECT_DOUBLE_EQ(v.Sum(), 0.0);
}

TEST(ResourceVector, InitializerList) {
  const ResourceVector v{8.0, 4.0};
  EXPECT_EQ(v.dimension(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 8.0);
  EXPECT_DOUBLE_EQ(v[1], 4.0);
}

TEST(ResourceVectorDeathTest, RejectsNegativeComponents) {
  EXPECT_DEATH(ResourceVector({1.0, -2.0}), "negative resource");
}

TEST(ResourceVector, Arithmetic) {
  const ResourceVector a{3.0, 1.0};
  const ResourceVector b{1.0, 0.5};
  const ResourceVector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 4.0);
  EXPECT_DOUBLE_EQ(sum[1], 1.5);
  const ResourceVector diff = a - b;
  EXPECT_DOUBLE_EQ(diff[0], 2.0);
  const ResourceVector scaled = 2.0 * b;
  EXPECT_DOUBLE_EQ(scaled[0], 2.0);
  EXPECT_DOUBLE_EQ(scaled[1], 1.0);
}

TEST(ResourceVector, FitsWithTolerance) {
  const ResourceVector capacity{1.0, 1.0};
  EXPECT_TRUE(capacity.Fits({1.0, 1.0}));
  EXPECT_TRUE(capacity.Fits({1.0 + 1e-12, 1.0}));  // round-off forgiven
  EXPECT_FALSE(capacity.Fits({1.1, 0.1}));
}

TEST(ResourceVector, DivisibleTaskCountTakesBindingResource) {
  const ResourceVector machine{9.0, 12.0};
  EXPECT_DOUBLE_EQ(machine.DivisibleTaskCount({1.0, 2.0}), 6.0);  // RAM binds
  EXPECT_DOUBLE_EQ(machine.DivisibleTaskCount({3.0, 1.0}), 3.0);  // CPU binds
}

TEST(ResourceVector, DivisibleTaskCountIgnoresZeroDemands) {
  const ResourceVector machine{4.0, 100.0};
  EXPECT_DOUBLE_EQ(machine.DivisibleTaskCount({2.0, 0.0}), 2.0);
}

TEST(ResourceVector, DivisibleTaskCountAllZeroDemandIsInfinite) {
  const ResourceVector machine{4.0, 4.0};
  EXPECT_TRUE(std::isinf(machine.DivisibleTaskCount(ResourceVector(2))));
}

TEST(ResourceVector, IntegralTaskCountFloorsAndForgivesRoundoff) {
  const ResourceVector machine{10.0, 10.0};
  EXPECT_EQ(machine.IntegralTaskCount({3.0, 1.0}), 3);
  // 0.1 * 30 != 3.0 exactly in binary; the count must still be 100.
  ResourceVector tight{3.0, 10.0};
  EXPECT_EQ(tight.IntegralTaskCount({0.03, 0.1}), 100);
}

TEST(ResourceVector, NonNegativeAndIsZero) {
  ResourceVector v{1.0, 0.0};
  v -= ResourceVector{1.0, 0.0};
  EXPECT_TRUE(v.NonNegative());
  EXPECT_TRUE(v.IsZero(1e-12));
  v -= ResourceVector{1.0, 0.0};
  EXPECT_FALSE(v.NonNegative());
}

TEST(ResourceVector, MaxComponent) {
  EXPECT_DOUBLE_EQ((ResourceVector{0.2, 0.7, 0.1}).MaxComponent(), 0.7);
}

TEST(ResourceVector, ToStringRoundTripsValues) {
  const ResourceVector v{1.5, 2.0};
  EXPECT_EQ(v.ToString(), "<1.5, 2>");
}

}  // namespace
}  // namespace tsf
