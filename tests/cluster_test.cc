// Unit tests for constraints, Cluster, Compile, and constraint-graph
// component analysis.
#include <gtest/gtest.h>

#include "core/cluster.h"

namespace tsf {
namespace {

// The 4-machine constraint graph of Fig. 1: u1 everywhere but m4, u2
// everywhere, u3 only on m3, u4 on {m2, m4}.
SharingProblem Fig1Problem() {
  SharingProblem problem;
  for (int k = 0; k < 4; ++k)
    problem.cluster.AddMachine(ResourceVector{4.0, 8.0});
  JobSpec u1{.id = 0, .name = "u1", .demand = {1.0, 1.0}};
  u1.constraint = Constraint::Blacklist({3});
  JobSpec u2{.id = 1, .name = "u2", .demand = {1.0, 1.0}};
  JobSpec u3{.id = 2, .name = "u3", .demand = {1.0, 1.0}};
  u3.constraint = Constraint::Whitelist({2});
  JobSpec u4{.id = 3, .name = "u4", .demand = {1.0, 1.0}};
  u4.constraint = Constraint::Whitelist({1, 3});
  problem.jobs = {u1, u2, u3, u4};
  return problem;
}

TEST(AttributeSet, ContainsAll) {
  const AttributeSet machine({1, 3, 5, 7});
  EXPECT_TRUE(machine.ContainsAll(AttributeSet({3, 7})));
  EXPECT_TRUE(machine.ContainsAll(AttributeSet{}));
  EXPECT_FALSE(machine.ContainsAll(AttributeSet({3, 4})));
}

TEST(AttributeSet, AddIsIdempotentAndSorted) {
  AttributeSet set;
  set.Add(5);
  set.Add(1);
  set.Add(5);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.ids(), (std::vector<AttributeId>{1, 5}));
}

TEST(Constraint, NoneAllowsEverything) {
  const Constraint c = Constraint::None();
  EXPECT_TRUE(c.Allows(0, AttributeSet{}));
  EXPECT_TRUE(c.Allows(99, AttributeSet({1, 2})));
}

TEST(Constraint, AttributeRequirement) {
  const Constraint c = Constraint::RequireAttributes(AttributeSet({2, 4}));
  EXPECT_TRUE(c.Allows(0, AttributeSet({1, 2, 4})));
  EXPECT_FALSE(c.Allows(0, AttributeSet({2})));
}

TEST(Constraint, WhitelistAndBlacklist) {
  const Constraint white = Constraint::Whitelist({1, 3});
  EXPECT_TRUE(white.Allows(1, AttributeSet{}));
  EXPECT_FALSE(white.Allows(2, AttributeSet{}));
  const Constraint black = Constraint::Blacklist({1, 3});
  EXPECT_FALSE(black.Allows(1, AttributeSet{}));
  EXPECT_TRUE(black.Allows(2, AttributeSet{}));
}

TEST(Cluster, TotalsAndNormalization) {
  Cluster cluster;
  cluster.AddMachine(ResourceVector{9.0, 12.0});
  cluster.AddMachine(ResourceVector{3.0, 4.0});
  EXPECT_EQ(cluster.total(), (ResourceVector{12.0, 16.0}));
  const ResourceVector c0 = cluster.NormalizedCapacity(0);
  EXPECT_DOUBLE_EQ(c0[0], 0.75);
  EXPECT_DOUBLE_EQ(c0[1], 0.75);
  const ResourceVector d = cluster.NormalizedDemand({1.0, 2.0});
  EXPECT_DOUBLE_EQ(d[0], 1.0 / 12.0);
  EXPECT_DOUBLE_EQ(d[1], 2.0 / 16.0);
}

TEST(Cluster, EligibilityMatchesFig1) {
  const SharingProblem problem = Fig1Problem();
  const CompiledProblem compiled = Compile(problem);
  // u1: all but m4.
  EXPECT_TRUE(compiled.eligible[0].Test(0));
  EXPECT_TRUE(compiled.eligible[0].Test(2));
  EXPECT_FALSE(compiled.eligible[0].Test(3));
  // u2: everywhere.
  EXPECT_TRUE(compiled.eligible[1].All());
  // u3: only m3.
  EXPECT_EQ(compiled.eligible[2].Count(), 1u);
  EXPECT_TRUE(compiled.eligible[2].Test(2));
  // u4: m2 and m4.
  EXPECT_EQ(compiled.eligible[3].Count(), 2u);
}

TEST(Compile, MonopolyCountsFig4Example) {
  // The running example of Sec. V-A: h = (14, 7, 7).
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{9.0, 12.0});
  problem.cluster.AddMachine(ResourceVector{3.0, 4.0});
  problem.cluster.AddMachine(ResourceVector{9.0, 12.0});
  JobSpec u1{.id = 0, .name = "u1", .demand = {1.0, 2.0}};
  u1.constraint = Constraint::Blacklist({2});
  JobSpec u2{.id = 1, .name = "u2", .demand = {3.0, 1.0}};
  u2.constraint = Constraint::Whitelist({1});
  JobSpec u3{.id = 2, .name = "u3", .demand = {1.0, 4.0}};
  problem.jobs = {u1, u2, u3};
  const CompiledProblem compiled = Compile(problem);
  EXPECT_NEAR(compiled.h[0], 14.0, 1e-9);
  EXPECT_NEAR(compiled.h[1], 7.0, 1e-9);
  EXPECT_NEAR(compiled.h[2], 7.0, 1e-9);
  // Constrained monopoly: u1 loses m3 (6 tasks), u2 keeps only m2 (1 task).
  EXPECT_NEAR(compiled.g[0], 8.0, 1e-9);
  EXPECT_NEAR(compiled.g[1], 1.0, 1e-9);
  EXPECT_NEAR(compiled.g[2], 7.0, 1e-9);
}

TEST(CompileDeathTest, RejectsZeroDemand) {
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{1.0, 1.0});
  problem.jobs.push_back(JobSpec{.id = 0, .name = "z", .demand = {0.0, 0.0}});
  EXPECT_DEATH(Compile(problem), "demand must be positive");
}

TEST(CompileDeathTest, RejectsUnsatisfiableConstraint) {
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{1.0, 1.0});
  JobSpec job{.id = 0, .name = "nowhere", .demand = {1.0, 1.0}};
  job.constraint = Constraint::RequireAttributes(AttributeSet({42}));
  problem.jobs.push_back(job);
  EXPECT_DEATH(Compile(problem), "no machine satisfies");
}

TEST(CompileDeathTest, RejectsNonPositiveWeight) {
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{1.0});
  JobSpec job{.id = 0, .name = "w0", .demand = {1.0}};
  job.weight = 0.0;
  problem.jobs.push_back(job);
  EXPECT_DEATH(Compile(problem), "weight must be positive");
}

TEST(FindComponents, ConnectedGraphIsOneComponent) {
  const CompiledProblem compiled = Compile(Fig1Problem());
  const ConstraintComponents components = FindComponents(compiled);
  EXPECT_EQ(components.count, 1u);
}

TEST(FindComponents, DisjointWhitelistsSplit) {
  SharingProblem problem;
  for (int k = 0; k < 4; ++k) problem.cluster.AddMachine(ResourceVector{1.0});
  JobSpec a{.id = 0, .name = "a", .demand = {1.0}};
  a.constraint = Constraint::Whitelist({0, 1});
  JobSpec b{.id = 1, .name = "b", .demand = {1.0}};
  b.constraint = Constraint::Whitelist({2, 3});
  problem.jobs = {a, b};
  const ConstraintComponents components = FindComponents(Compile(problem));
  EXPECT_EQ(components.count, 2u);
  EXPECT_NE(components.user_component[0], components.user_component[1]);
  EXPECT_EQ(components.machine_component[0], components.machine_component[1]);
  EXPECT_EQ(components.machine_component[2], components.machine_component[3]);
}

TEST(FindComponents, SharedUserMergesComponents) {
  SharingProblem problem;
  for (int k = 0; k < 3; ++k) problem.cluster.AddMachine(ResourceVector{1.0});
  JobSpec a{.id = 0, .name = "a", .demand = {1.0}};
  a.constraint = Constraint::Whitelist({0});
  JobSpec b{.id = 1, .name = "b", .demand = {1.0}};
  b.constraint = Constraint::Whitelist({0, 2});
  problem.jobs = {a, b};
  const ConstraintComponents components = FindComponents(Compile(problem));
  // m1 bridged to m3 through user b; m2 has no user and stands alone.
  EXPECT_EQ(components.count, 2u);
  EXPECT_EQ(components.user_component[0], components.user_component[1]);
}

}  // namespace
}  // namespace tsf
