// Golden determinism tests: the placement streams of fixed (policy, seed)
// chaos scenarios are pinned by FNV-1a hash in tests/golden/, plus one
// fully-expanded stream for first-divergence diffing. Any change to
// scheduler tie-breaking, event ordering, or fault semantics shows up here
// as an exact diff instead of a silent behavior shift.
//
// To bless intentional changes:  TSF_UPDATE_GOLDEN=1 ctest -R GoldenStream
// (rewrites the files under tests/golden/, then commit the diff).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/scenario.h"

namespace tsf::chaos {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4};
constexpr const char* kHashFile = TSF_GOLDEN_DIR "/stream_hashes.txt";
// The fully-expanded stream kept for first-divergence diffs.
constexpr const char* kStreamFile = TSF_GOLDEN_DIR "/des_TSF_seed1.stream";

bool UpdateMode() { return std::getenv("TSF_UPDATE_GOLDEN") != nullptr; }

std::string HashHex(std::uint64_t hash) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

// key -> hash, where key is "des <policy> seed=<s>", "des-collapsed
// <policy> seed=<s>", or "mesos seed=<s>".
std::map<std::string, std::string> ComputeHashes() {
  std::map<std::string, std::string> hashes;
  for (const std::uint64_t seed : kSeeds) {
    const DesScenario scenario = RandomDesScenario(seed);
    for (const OnlinePolicy& policy : AllOnlinePolicies()) {
      const ScenarioReport report =
          RunDesScenario(scenario.workload, policy, scenario.plan);
      EXPECT_TRUE(report.ok())
          << policy.name << " seed " << seed << ": "
          << ToString(report.violations.front());
      hashes["des " + policy.name + " seed=" + std::to_string(seed)] =
          HashHex(report.stream_hash);
    }
    // Collapsed-cluster scenarios: the uniform workloads collapse into a
    // few multi-member equivalence classes. The forced-collapsed stream is
    // the pinned golden; the forced-flat run must match it exactly (the
    // bit-identity contract of the class engine, checked here on every run).
    const DesScenario uniform = RandomUniformDesScenario(seed);
    for (const OnlinePolicy& policy : AllOnlinePolicies()) {
      const ScenarioReport collapsed =
          RunDesScenario(uniform.workload, policy, uniform.plan,
                         SimCore::kIncremental, ClusterMode::kCollapsed);
      const ScenarioReport flat =
          RunDesScenario(uniform.workload, policy, uniform.plan,
                         SimCore::kIncremental, ClusterMode::kFlat);
      EXPECT_TRUE(collapsed.ok())
          << "collapsed " << policy.name << " seed " << seed << ": "
          << ToString(collapsed.violations.front());
      EXPECT_EQ(collapsed.stream_hash, flat.stream_hash)
          << "collapsed and flat streams diverged for " << policy.name
          << " seed " << seed;
      hashes["des-collapsed " + policy.name + " seed=" + std::to_string(seed)] =
          HashHex(collapsed.stream_hash);
    }
    const ScenarioReport mesos = RunMesosScenario(RandomMesosScenario(seed));
    EXPECT_TRUE(mesos.ok())
        << "mesos seed " << seed << ": " << ToString(mesos.violations.front());
    hashes["mesos seed=" + std::to_string(seed)] = HashHex(mesos.stream_hash);
  }
  return hashes;
}

TEST(GoldenStreamTest, HashesMatchGolden) {
  const std::map<std::string, std::string> hashes = ComputeHashes();

  if (UpdateMode()) {
    std::ofstream out(kHashFile);
    ASSERT_TRUE(out.good()) << "cannot write " << kHashFile;
    out << "# (policy, seed) -> FNV-1a stream hash; regenerate with\n"
        << "# TSF_UPDATE_GOLDEN=1 ctest -R GoldenStream\n";
    for (const auto& [key, hash] : hashes) out << key << " " << hash << "\n";
    GTEST_SKIP() << "golden hashes rewritten (" << hashes.size()
                 << " entries)";
  }

  std::ifstream in(kHashFile);
  ASSERT_TRUE(in.good()) << "missing " << kHashFile
                         << "; run once with TSF_UPDATE_GOLDEN=1";
  std::map<std::string, std::string> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    const std::size_t split = line.rfind(' ');
    ASSERT_NE(split, std::string::npos) << "malformed golden line: " << line;
    golden[line.substr(0, split)] = line.substr(split + 1);
  }

  EXPECT_EQ(golden.size(), hashes.size());
  for (const auto& [key, hash] : hashes) {
    const auto it = golden.find(key);
    if (it == golden.end()) {
      ADD_FAILURE() << "no golden entry for '" << key << "'";
      continue;
    }
    EXPECT_EQ(it->second, hash)
        << "stream hash changed for '" << key
        << "' — a deliberate behavior change needs TSF_UPDATE_GOLDEN=1";
  }
}

TEST(GoldenStreamTest, FullStreamMatchesWithFirstDivergenceDiff) {
  const DesScenario scenario = RandomDesScenario(1);
  const ScenarioReport report =
      RunDesScenario(scenario.workload, OnlinePolicy::Tsf(), scenario.plan);
  std::vector<std::string> lines;
  for (const StreamEvent& event : report.stream)
    lines.push_back(FormatStreamEvent(event));

  if (UpdateMode()) {
    std::ofstream out(kStreamFile);
    ASSERT_TRUE(out.good()) << "cannot write " << kStreamFile;
    for (const std::string& line : lines) out << line << "\n";
    GTEST_SKIP() << "golden stream rewritten (" << lines.size() << " events)";
  }

  std::ifstream in(kStreamFile);
  ASSERT_TRUE(in.good()) << "missing " << kStreamFile
                         << "; run once with TSF_UPDATE_GOLDEN=1";
  std::vector<std::string> golden;
  std::string line;
  while (std::getline(in, line)) golden.push_back(line);

  const std::size_t n = std::min(golden.size(), lines.size());
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(lines[i], golden[i])
        << "first divergence at event #" << i << " of " << lines.size();
  EXPECT_EQ(lines.size(), golden.size())
      << "streams agree on the first " << n << " events but lengths differ";
}

}  // namespace
}  // namespace tsf::chaos
