// Tests for the multi-class TSF extension (Sec. VII's pointer to Tan et
// al. applied to TSF).
#include <gtest/gtest.h>

#include "core/offline/multiclass.h"
#include "core/offline/policies.h"
#include "core/paper_examples.h"
#include "util/rng.h"

namespace tsf {
namespace {

TEST(MultiClass, SingleClassReducesToStandardTsf) {
  // Wrap the Fig. 4 instance: every user one class with mix {1}.
  const SharingProblem base = paper::Fig4();
  MultiClassProblem problem;
  problem.cluster = base.cluster;
  for (const JobSpec& job : base.jobs) {
    MultiClassJobSpec user;
    user.name = job.name;
    user.weight = job.weight;
    user.constraint = job.constraint;
    user.class_demand = {job.demand};
    user.class_mix = {1.0};
    problem.users.push_back(std::move(user));
  }
  const CompiledMultiClass compiled = CompileMultiClass(problem);
  // H degenerates to h: (14, 7, 7).
  EXPECT_NEAR(compiled.H[0], 14.0, 1e-6);
  EXPECT_NEAR(compiled.H[1], 7.0, 1e-6);
  EXPECT_NEAR(compiled.H[2], 7.0, 1e-6);

  const MultiClassResult result = SolveMultiClassTsf(compiled);
  EXPECT_NEAR(result.allocation.UserTasks(0), 6.0, 1e-4);
  EXPECT_NEAR(result.allocation.UserTasks(1), 1.0, 1e-4);
  EXPECT_NEAR(result.allocation.UserTasks(2), 3.0, 1e-4);
  EXPECT_NEAR(result.shares[0], 3.0 / 7.0, 1e-5);
  EXPECT_NEAR(result.shares[1], 1.0 / 7.0, 1e-5);
  EXPECT_NEAR(result.shares[2], 3.0 / 7.0, 1e-5);
}

TEST(MultiClass, MonopolyTotalRespectsTheMix) {
  // One machine <8 CPU, 8 GB>. Classes: map <1,0.5> (mix 3/4) and reduce
  // <1,2> (mix 1/4). Per 4 tasks: 3 maps + 1 reduce = <4 CPU, 3.5 GB>;
  // CPU binds: n <= 8.
  MultiClassProblem problem;
  problem.cluster.AddMachine(ResourceVector{8.0, 8.0});
  MultiClassJobSpec user;
  user.name = "mr";
  user.class_demand = {ResourceVector{1.0, 0.5}, ResourceVector{1.0, 2.0}};
  user.class_mix = {0.75, 0.25};
  problem.users.push_back(user);
  const CompiledMultiClass compiled = CompileMultiClass(problem);
  EXPECT_NEAR(compiled.H[0], 8.0, 1e-6);
}

TEST(MultiClass, AllocationKeepsClassProportions) {
  MultiClassProblem problem;
  problem.cluster.AddMachine(ResourceVector{12.0, 12.0});
  problem.cluster.AddMachine(ResourceVector{12.0, 12.0});
  MultiClassJobSpec a;
  a.name = "a";
  a.class_demand = {ResourceVector{1.0, 0.5}, ResourceVector{0.5, 2.0}};
  a.class_mix = {2.0 / 3.0, 1.0 / 3.0};
  MultiClassJobSpec b;
  b.name = "b";
  b.class_demand = {ResourceVector{1.0, 1.0}};
  b.class_mix = {1.0};
  problem.users = {a, b};
  const CompiledMultiClass compiled = CompileMultiClass(problem);
  const MultiClassResult result = SolveMultiClassTsf(compiled);
  const double total = result.allocation.UserTasks(0);
  ASSERT_GT(total, 0.1);
  EXPECT_NEAR(result.allocation.ClassTasks(0, 0), total * 2.0 / 3.0, 1e-5);
  EXPECT_NEAR(result.allocation.ClassTasks(0, 1), total / 3.0, 1e-5);
}

TEST(MultiClass, ConstraintsRestrictEveryClass) {
  MultiClassProblem problem;
  problem.cluster.AddMachine(ResourceVector{6.0});
  problem.cluster.AddMachine(ResourceVector{6.0});
  MultiClassJobSpec pinned;
  pinned.name = "pinned";
  pinned.constraint = Constraint::Whitelist({1});
  pinned.class_demand = {ResourceVector{1.0}, ResourceVector{2.0}};
  pinned.class_mix = {0.5, 0.5};
  problem.users.push_back(pinned);
  const CompiledMultiClass compiled = CompileMultiClass(problem);
  const MultiClassResult result = SolveMultiClassTsf(compiled);
  // Machine 0 must stay empty.
  for (std::size_t c = 0; c < 2; ++c)
    EXPECT_NEAR(result.allocation.tasks[0][c][0], 0.0, 1e-9);
  // Machine 1: n/2 * 1 + n/2 * 2 = 6 -> n = 4; H (both machines) = 8.
  EXPECT_NEAR(result.allocation.UserTasks(0), 4.0, 1e-5);
  EXPECT_NEAR(result.shares[0], 0.5, 1e-6);
}

TEST(MultiClass, SharesEqualizeAcrossHeterogeneousUsers) {
  // Two users with different class structures end up with equal shares on
  // a symmetric cluster (neither saturates before the other).
  MultiClassProblem problem;
  problem.cluster.AddMachine(ResourceVector{10.0, 10.0});
  MultiClassJobSpec mixed;
  mixed.name = "mixed";
  mixed.class_demand = {ResourceVector{2.0, 1.0}, ResourceVector{1.0, 2.0}};
  mixed.class_mix = {0.5, 0.5};
  MultiClassJobSpec plain;
  plain.name = "plain";
  plain.class_demand = {ResourceVector{1.0, 1.0}};
  plain.class_mix = {1.0};
  problem.users = {mixed, plain};
  const CompiledMultiClass compiled = CompileMultiClass(problem);
  const MultiClassResult result = SolveMultiClassTsf(compiled);
  EXPECT_NEAR(result.shares[0], result.shares[1], 1e-5);
}

TEST(MultiClass, RandomizedFeasibilityAndMixInvariant) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 17 + 3);
    MultiClassProblem problem;
    const auto machines = static_cast<std::size_t>(rng.Int(2, 4));
    for (std::size_t m = 0; m < machines; ++m)
      problem.cluster.AddMachine(ResourceVector(std::vector<double>{
          rng.Uniform(4.0, 16.0), rng.Uniform(4.0, 16.0)}));
    const auto users = static_cast<std::size_t>(rng.Int(2, 4));
    for (std::size_t i = 0; i < users; ++i) {
      MultiClassJobSpec user;
      user.name = "u" + std::to_string(i);
      const auto classes = static_cast<std::size_t>(rng.Int(1, 3));
      double remaining = 1.0;
      for (std::size_t c = 0; c < classes; ++c) {
        user.class_demand.push_back(ResourceVector(std::vector<double>{
            rng.Uniform(0.3, 2.0), rng.Uniform(0.3, 2.0)}));
        const double mix = c + 1 == classes
                               ? remaining
                               : remaining * rng.Uniform(0.2, 0.8);
        user.class_mix.push_back(mix);
        remaining -= mix;
      }
      if (rng.Chance(0.5) && machines > 1)
        user.constraint = Constraint::Whitelist({rng.Below(machines)});
      problem.users.push_back(std::move(user));
    }
    const CompiledMultiClass compiled = CompileMultiClass(problem);
    const MultiClassResult result = SolveMultiClassTsf(compiled);

    // Mix invariant per user.
    for (std::size_t i = 0; i < users; ++i) {
      const double total = result.allocation.UserTasks(i);
      for (std::size_t c = 0; c < compiled.mix[i].size(); ++c)
        EXPECT_NEAR(result.allocation.ClassTasks(i, c),
                    total * compiled.mix[i][c], 1e-4)
            << "seed " << seed;
    }
    // Capacity + eligibility.
    for (MachineId m = 0; m < machines; ++m) {
      ResourceVector usage(2);
      for (std::size_t i = 0; i < users; ++i)
        for (std::size_t c = 0; c < compiled.mix[i].size(); ++c) {
          const double tasks = result.allocation.tasks[i][c][m];
          if (tasks > 1e-9) {
            EXPECT_TRUE(compiled.eligible[i].Test(m));
          }
          usage += tasks * compiled.demand[i][c];
        }
      for (std::size_t r = 0; r < 2; ++r)
        EXPECT_LE(usage[r], compiled.machine_capacity[m][r] + 1e-6)
            << "seed " << seed;
    }
  }
}

TEST(MultiClassDeathTest, RejectsBadMix) {
  MultiClassProblem problem;
  problem.cluster.AddMachine(ResourceVector{4.0});
  MultiClassJobSpec user;
  user.name = "bad";
  user.class_demand = {ResourceVector{1.0}, ResourceVector{1.0}};
  user.class_mix = {0.5, 0.6};  // sums to 1.1
  problem.users.push_back(user);
  EXPECT_DEATH(CompileMultiClass(problem), "mix must sum to 1");
}

TEST(MultiClassDeathTest, RejectsZeroMixClass) {
  MultiClassProblem problem;
  problem.cluster.AddMachine(ResourceVector{4.0});
  MultiClassJobSpec user;
  user.name = "zero";
  user.class_demand = {ResourceVector{1.0}, ResourceVector{1.0}};
  user.class_mix = {1.0, 0.0};
  problem.users.push_back(user);
  EXPECT_DEATH(CompileMultiClass(problem), "strictly positive");
}

}  // namespace
}  // namespace tsf
