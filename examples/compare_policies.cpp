// Policy bake-off on a trace-driven cluster simulation.
//
//   $ ./examples/compare_policies [--machines N] [--jobs N] [--seed S]
//
// Synthesizes a Google-like workload (machine heterogeneity, attribute
// constraints, mice-dominated job sizes), runs it under all six online
// policies from the paper's evaluation, and prints a comparison of job and
// task metrics — a miniature of the Figs. 9-11 harnesses.
#include <cstdio>

#include "sim/des.h"
#include "stats/cdf.h"
#include "stats/table.h"
#include "trace/google.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace tsf;
  Flags flags(argc, argv,
              {{"machines", "cluster size (default 200)"},
               {"jobs", "number of jobs (default 800)"},
               {"seed", "workload seed (default 1)"}});

  trace::GoogleTraceConfig config;
  config.num_machines = static_cast<std::size_t>(flags.GetInt("machines", 200));
  config.num_jobs = static_cast<std::size_t>(flags.GetInt("jobs", 800));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  const Workload workload = trace::SynthesizeGoogleWorkload(config);
  std::printf("workload: %zu machines, %zu jobs, %zu tasks\n",
              config.num_machines, workload.jobs.size(), workload.TotalTasks());

  const std::vector<OnlinePolicy> policies = {
      OnlinePolicy::Fifo(),         OnlinePolicy::Drf(),
      OnlinePolicy::Cdrf(),         OnlinePolicy::Cmmf(0, "CPU"),
      OnlinePolicy::Cmmf(1, "Mem"), OnlinePolicy::Tsf()};

  TextTable table({"policy", "makespan(s)", "job compl p50", "job compl p90",
                   "task queue p50", "task queue p90"});
  std::vector<SimResult> results;
  for (const OnlinePolicy& policy : policies) {
    results.push_back(Simulate(workload, policy));
    const SimResult& result = results.back();
    EmpiricalCdf completion, queueing;
    completion.AddAll(result.JobCompletionTimes());
    queueing.AddAll(result.TaskQueueingDelays());
    table.AddRow({policy.name, TextTable::Num(result.makespan, 0),
                  TextTable::Num(completion.Quantile(0.5), 1),
                  TextTable::Num(completion.Quantile(0.9), 1),
                  TextTable::Num(queueing.Quantile(0.5), 1),
                  TextTable::Num(queueing.Quantile(0.9), 1)});
  }
  std::printf("\n%s", table.Format().c_str());

  // Per-task speedup of TSF vs each fair alternative (tasks align across
  // policies because the workload pre-samples every task's runtime).
  const SimResult& tsf = results.back();
  std::printf("\nper-task queueing-delay comparison vs TSF:\n");
  for (std::size_t k = 1; k + 1 < results.size(); ++k) {
    std::size_t faster = 0, slower = 0;
    for (std::size_t t = 0; t < tsf.tasks.size(); ++t) {
      const double delta = results[k].tasks[t].QueueingDelay() -
                           tsf.tasks[t].QueueingDelay();
      faster += delta > 1.0;
      slower += delta < -1.0;
    }
    std::printf("  %-4s: TSF faster for %5.1f%% of tasks, slower for %5.1f%%\n",
                policies[k].name.c_str(),
                100.0 * static_cast<double>(faster) /
                    static_cast<double>(tsf.tasks.size()),
                100.0 * static_cast<double>(slower) /
                    static_cast<double>(tsf.tasks.size()));
  }
  return 0;
}
