// Quickstart: define a cluster and jobs with placement constraints, compute
// the TSF allocation, and inspect the guarantees.
//
//   $ ./examples/quickstart
//
// Walks through the library's core loop: build a SharingProblem -> Compile
// -> SolveTsf -> read shares/allocations, then checks envy-freeness and
// Pareto optimality on the result.
#include <cstdio>

#include "core/offline/policies.h"
#include "core/offline/properties.h"

int main() {
  using namespace tsf;

  // A small heterogeneous cluster: two big nodes, one GPU node. Resources
  // are <CPU cores, RAM GB>; the GPU capability is a machine attribute.
  constexpr AttributeId kHasGpu = 1;
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{16.0, 64.0}, {}, "big-1");
  problem.cluster.AddMachine(ResourceVector{16.0, 64.0}, {}, "big-2");
  problem.cluster.AddMachine(ResourceVector{8.0, 32.0}, AttributeSet({kHasGpu}),
                             "gpu-1");

  // Three jobs: a CPU-bound analytics job that runs anywhere, a memory-
  // hungry graph job, and a CUDA job that must have the GPU attribute.
  JobSpec analytics{.id = 0, .name = "analytics", .demand = {2.0, 4.0}};
  JobSpec graph{.id = 1, .name = "graph", .demand = {1.0, 16.0}};
  JobSpec cuda{.id = 2, .name = "cuda", .demand = {2.0, 8.0}};
  cuda.constraint = Constraint::RequireAttributes(AttributeSet({kHasGpu}));
  problem.jobs = {analytics, graph, cuda};

  // Compile validates the instance and precomputes normalized demands,
  // eligibility bitsets, and the monopoly task counts h_i / g_i.
  const CompiledProblem compiled = Compile(problem);
  std::printf("monopoly task counts (divisible):\n");
  for (UserId i = 0; i < compiled.num_users; ++i)
    std::printf("  %-9s h=%.2f (unconstrained)  g=%.2f (constrained)\n",
                problem.jobs[i].name.c_str(), compiled.h[i], compiled.g[i]);

  // Task Share Fairness: max-min over n_i / (h_i * w_i).
  const FillingResult result = SolveTsf(compiled);
  std::printf("\nTSF allocation:\n%s",
              result.allocation.ToString(compiled).c_str());

  // The properties the paper proves hold on every instance; check them here.
  std::printf("\nguarantees on this allocation:\n");
  std::printf("  envy-free:       %s\n",
              FindEnvy(compiled, result.allocation) ? "NO (bug!)" : "yes");
  std::printf("  Pareto-optimal:  %s\n",
              FindParetoImprovement(compiled, result.allocation) ? "NO (bug!)"
                                                                 : "yes");

  // Compare against constrained CDRF to see why the denominator matters:
  // CDRF divides by the constrained monopoly g, so the GPU job's small g
  // inflates its share and CDRF gives it fewer tasks.
  const FillingResult cdrf = SolveCdrf(compiled);
  std::printf("\nCDRF would give the CUDA job %.2f tasks; TSF gives %.2f.\n",
              cdrf.allocation.UserTasks(2), result.allocation.UserTasks(2));
  return 0;
}
