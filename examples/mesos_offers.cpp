// Offer-based cluster manager walkthrough (the Mesos-like substrate).
//
//   $ ./examples/mesos_offers
//
// Builds a small heterogeneous fleet, registers frameworks with node
// whitelists at staggered times, runs the offer cycle under the TSF
// allocator, and prints the task-share timeline — a miniature of the
// Fig. 5 micro-benchmark on a custom scenario.
#include <cstdio>

#include "mesos/mesos.h"
#include "stats/table.h"

int main() {
  using namespace tsf;
  using namespace tsf::mesos;

  // A 10-node fleet: six standard nodes and four big-memory nodes.
  ClusterConfig config;
  for (int n = 0; n < 6; ++n)
    config.slaves.push_back({ResourceVector{4.0, 8192.0},
                             "std-" + std::to_string(n + 1)});
  for (int n = 0; n < 4; ++n)
    config.slaves.push_back({ResourceVector{8.0, 32768.0},
                             "mem-" + std::to_string(n + 1)});
  config.policy = AllocatorPolicy::kTsf;
  config.sample_interval = 5.0;
  config.seed = 7;

  // Three frameworks: a batch job that runs anywhere, an in-memory store
  // pinned to the big-memory nodes (slaves 6-9), and a latecomer service.
  std::vector<FrameworkSpec> frameworks(3);
  frameworks[0] = {.name = "batch", .start_time = 0.0, .num_tasks = 200,
                   .demand = ResourceVector{1.0, 1024.0}, .mean_runtime = 12.0,
                   .runtime_jitter = 0.2};
  frameworks[1] = {.name = "memstore", .start_time = 20.0, .num_tasks = 40,
                   .demand = ResourceVector{1.0, 8192.0}, .mean_runtime = 30.0,
                   .runtime_jitter = 0.2, .whitelist = {6, 7, 8, 9}};
  frameworks[2] = {.name = "service", .start_time = 60.0, .num_tasks = 30,
                   .demand = ResourceVector{2.0, 2048.0}, .mean_runtime = 15.0,
                   .runtime_jitter = 0.2};

  const SimOutcome outcome = RunCluster(config, frameworks);

  std::printf("task-share timeline (share = running / unconstrained monopoly):\n");
  TextTable timeline({"t(s)", "batch", "memstore", "service"});
  const std::size_t stride = std::max<std::size_t>(1, outcome.timeline.size() / 25);
  for (std::size_t k = 0; k < outcome.timeline.size(); k += stride) {
    const SharePoint& point = outcome.timeline[k];
    timeline.AddRow({TextTable::Num(point.time, 0),
                     TextTable::Num(point.task_share[0], 2),
                     TextTable::Num(point.task_share[1], 2),
                     TextTable::Num(point.task_share[2], 2)});
  }
  std::printf("%s", timeline.Format().c_str());

  std::printf("\ncompletions:\n");
  for (const FrameworkStats& fw : outcome.frameworks)
    std::printf("  %-9s first task %6.1fs, done %6.1fs (h=%.0f)\n",
                fw.name.c_str(), fw.first_task_time, fw.completion_time, fw.h);
  std::printf("\nNote how 'memstore' receives its whitelisted nodes as soon "
              "as running\n'batch' tasks drain, without preemption, and how "
              "the allocator keeps\noffering the least-served framework "
              "first.\n");
  return 0;
}
