// Strategy-proofness demo: can a user gain by lying to the scheduler?
//
//   $ ./examples/strategic_user
//
// Replays the paper's Fig. 2 manipulation (claiming machines you cannot
// use) and a demand-inflation attack against both constrained CDRF and TSF,
// reporting the *real* tasks each strategy completes. Under TSF neither
// lie pays (Theorems 2-3); under CDRF the constraint lie does.
#include <cstdio>

#include "core/offline/policies.h"
#include "core/offline/properties.h"
#include "core/paper_examples.h"
#include "stats/table.h"

int main() {
  using namespace tsf;
  const CompiledProblem problem = Compile(paper::Fig2Truthful());

  const OfflineSolver cdrf = [](const CompiledProblem& p) { return SolveCdrf(p); };
  const OfflineSolver tsf = [](const CompiledProblem& p) { return SolveTsf(p); };

  // Lie 1: u2 claims it can also run on m1 (the Fig. 2 attack).
  Lie claim_extra_machines;
  DynamicBitset all(problem.num_machines);
  all.SetAll();
  claim_extra_machines.eligible = all;

  // Lie 2: u2 doubles its reported CPU demand, hoping for fatter bundles.
  Lie inflate_demand;
  ResourceVector inflated = problem.demand[1];
  inflated[0] *= 2.0;
  inflate_demand.demand = inflated;

  // Lie 3: u2 under-reports memory, hoping to be ranked cheaper.
  Lie shave_demand;
  ResourceVector shaved = problem.demand[1];
  shaved[1] *= 0.5;
  shave_demand.demand = shaved;

  struct Attack {
    const char* name;
    const Lie* lie;
  };
  const Attack attacks[] = {{"claim ineligible machine", &claim_extra_machines},
                            {"inflate CPU demand 2x", &inflate_demand},
                            {"under-report memory 2x", &shave_demand}};

  TextTable table({"attack by u2", "policy", "honest tasks", "real tasks when lying",
                   "verdict"});
  for (const Attack& attack : attacks) {
    for (const auto& [policy_name, solver] :
         {std::pair<const char*, const OfflineSolver*>{"CDRF", &cdrf},
          std::pair<const char*, const OfflineSolver*>{"TSF", &tsf}}) {
      const ManipulationOutcome outcome =
          ProbeManipulation(problem, 1, *attack.lie, *solver);
      table.AddRow({attack.name, policy_name,
                    TextTable::Num(outcome.truthful_tasks, 2),
                    TextTable::Num(outcome.lying_tasks, 2),
                    outcome.profitable() ? "LIE PAYS OFF" : "honesty optimal"});
    }
  }
  std::printf("cluster: two <18 CPU, 18 GB> machines; u1 <1,2> anywhere, "
              "u2 <1,3> on m2 only\n\n%s", table.Format().c_str());
  std::printf("\nwhy: TSF's share denominator h is computed with constraints "
              "removed, so\nclaiming machines does not change u2's "
              "entitlement, and allocations made\nfor misreported demands "
              "convert back to fewer real tasks.\n");
  return 0;
}
