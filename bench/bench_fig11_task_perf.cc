// Fig. 11 (Sec. VI-B3): task queueing delay CDF and per-task speedup of TSF
// over the alternative fair policies.
//
// Expected shape: FIFO has by far the longest task queueing delays; among
// the fair policies TSF sits lowest. In the per-task comparison the paper
// reports TSF speeding up ~60 % of tasks, with CDRF the worst alternative
// (it systematically starves constrained jobs) and CPU tracking DRF
// closely (the workload is CPU-bound).
#include <cstdio>

#include "bench_common.h"
#include "sim/runner.h"
#include "stats/table.h"

namespace tsf {
namespace {

int Run(int argc, char** argv) {
  bench::PrintHeader("Fig. 11 — task queueing delay and per-task speedup",
                     "Six policies; per-task deltas vs TSF on identical "
                     "workloads.");
  const bench::MacroConfig config = bench::ParseMacroFlags(argc, argv);
  const std::vector<OnlinePolicy> policies = bench::EvaluationPolicies();
  const std::size_t tsf_index = policies.size() - 1;
  const std::size_t num_alternatives = 4;  // DRF, CDRF, CPU, Mem

  std::vector<EmpiricalCdf> delay(policies.size());
  // Per-task speedup (delta of queueing delay) CDFs vs each fair baseline.
  std::vector<EmpiricalCdf> speedup(num_alternatives);
  std::vector<std::size_t> faster(num_alternatives, 0), slower(num_alternatives, 0);
  std::size_t total_tasks = 0;

  ThreadPool pool(config.threads);
  RunSeeds(
      [&config](std::uint64_t seed) {
        return trace::SynthesizeGoogleWorkload(bench::MakeTraceConfig(config, seed));
      },
      policies, config.first_seed, config.seeds, pool,
      [&](std::uint64_t seed, const std::vector<SimResult>& results) {
        bench::MaybeWriteFairnessTimelines(config, policies, seed, results);
        for (std::size_t k = 0; k < policies.size(); ++k)
          delay[k].AddAll(results[k].TaskQueueingDelays());
        const SimResult& tsf = results[tsf_index];
        total_tasks += tsf.tasks.size();
        for (std::size_t alt = 0; alt < num_alternatives; ++alt) {
          const SimResult& other = results[alt + 1];  // skip FIFO
          for (std::size_t t = 0; t < tsf.tasks.size(); ++t) {
            const double delta = other.tasks[t].QueueingDelay() -
                                 tsf.tasks[t].QueueingDelay();
            speedup[alt].Add(delta);
            if (delta > 1.0) ++faster[alt];
            if (delta < -1.0) ++slower[alt];
          }
        }
        std::printf(".");
        std::fflush(stdout);
      },
      config.sim_options());
  std::printf("\n");

  std::vector<std::string> labels;
  for (const OnlinePolicy& policy : policies) labels.push_back(policy.name);

  bench::PrintSection("Fig. 11a — task queueing delay (s)");
  bench::PrintCdfComparison("task queueing delay", labels, delay,
                            bench::FigureQuantiles());

  bench::PrintSection("Fig. 11b — per-task speedup of TSF (s, >0 = TSF faster)");
  const std::vector<std::string> alt_labels = {"vs DRF", "vs CDRF", "vs CPU",
                                               "vs Mem"};
  bench::PrintCdfComparison("queueing-delay reduction", alt_labels, speedup,
                            bench::FigureQuantiles());

  std::printf("\nfraction of tasks sped up / slowed down by TSF (|delta| > 1 s):\n");
  for (std::size_t alt = 0; alt < num_alternatives; ++alt)
    std::printf("  %-8s +%s / -%s\n", alt_labels[alt].c_str(),
                TextTable::Percent(static_cast<double>(faster[alt]) /
                                       static_cast<double>(total_tasks), 1)
                    .c_str(),
                TextTable::Percent(static_cast<double>(slower[alt]) /
                                       static_cast<double>(total_tasks), 1)
                    .c_str());
  std::printf("\npaper: TSF speeds up ~60%% of tasks; CDRF is the worst "
              "alternative; CPU ~= DRF.\nSee EXPERIMENTS.md for where our "
              "synthetic trace reproduces this and where it deviates.\n");
  return 0;
}

}  // namespace
}  // namespace tsf

int main(int argc, char** argv) { return tsf::Run(argc, argv); }
