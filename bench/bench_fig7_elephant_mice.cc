// Fig. 7 (Sec. VI-A3): TSF isolates "mice" from "elephants".
//
// Experiment 1: two elephants (250 tasks, 40-node whitelists) plus two mice
// (a picky 100-task job on 10 nodes; a 10-task job that runs anywhere).
// Experiment 2: the same four jobs plus four extra elephants congesting the
// cluster. The paper: the added load delays the elephants significantly but
// leaves the two mice essentially untouched.
#include <cstdio>

#include "bench_common.h"
#include "mesos/mesos.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "util/flags.h"

namespace tsf {
namespace {

std::vector<std::size_t> Nodes(std::initializer_list<std::pair<int, int>> ranges) {
  std::vector<std::size_t> ids;
  for (const auto& [lo, hi] : ranges)
    for (int n = lo; n <= hi; ++n) ids.push_back(static_cast<std::size_t>(n - 1));
  return ids;
}

std::vector<mesos::FrameworkSpec> BaseJobs() {
  // Demands/runtimes follow the Table II setup (Sec. VI-A3 reuses it).
  std::vector<mesos::FrameworkSpec> jobs(4);
  jobs[0] = {.name = "elephant1", .start_time = 0.0, .num_tasks = 250,
             .demand = ResourceVector{1.0, 512.0}, .mean_runtime = 23.2,
             .runtime_jitter = 0.2, .whitelist = Nodes({{1, 40}})};
  jobs[1] = {.name = "elephant2", .start_time = 0.0, .num_tasks = 250,
             .demand = ResourceVector{1.0, 512.0}, .mean_runtime = 23.2,
             .runtime_jitter = 0.2, .whitelist = Nodes({{11, 50}})};
  jobs[2] = {.name = "mouse1(picky)", .start_time = 0.0, .num_tasks = 100,
             .demand = ResourceVector{0.5, 512.0}, .mean_runtime = 18.3,
             .runtime_jitter = 0.2, .whitelist = Nodes({{1, 5}, {26, 30}})};
  jobs[3] = {.name = "mouse2(small)", .start_time = 0.0, .num_tasks = 10,
             .demand = ResourceVector{0.5, 512.0}, .mean_runtime = 18.3,
             .runtime_jitter = 0.2, .whitelist = {}};
  return jobs;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv, {{"seeds", "jitter seeds to average (default 5)"}});
  const auto seeds = static_cast<std::uint64_t>(flags.GetInt("seeds", 5));

  bench::PrintHeader("Fig. 7 — elephants cannot starve mice under TSF",
                     "Completion of 2 elephants + 2 mice, with and without 4 "
                     "extra elephants.");

  std::vector<Summary> baseline(4), congested(4);
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    mesos::ClusterConfig config;
    config.slaves = mesos::PaperFleet();
    config.policy = mesos::AllocatorPolicy::kTsf;
    config.sample_interval = 0.0;
    config.seed = seed;

    const mesos::SimOutcome base = mesos::RunCluster(config, BaseJobs());

    std::vector<mesos::FrameworkSpec> loaded = BaseJobs();
    for (int e = 0; e < 4; ++e)
      loaded.push_back({.name = "extra" + std::to_string(e + 1),
                        .start_time = 0.0, .num_tasks = 250,
                        .demand = ResourceVector{1.0, 512.0},
                        .mean_runtime = 23.2, .runtime_jitter = 0.2,
                        .whitelist = {}});
    const mesos::SimOutcome heavy = mesos::RunCluster(config, loaded);

    for (std::size_t f = 0; f < 4; ++f) {
      baseline[f].Add(base.frameworks[f].CompletionDuration());
      congested[f].Add(heavy.frameworks[f].CompletionDuration());
    }
  }

  TextTable table({"job", "alone (s)", "with 4 extra elephants (s)", "slowdown"});
  const std::vector<mesos::FrameworkSpec> jobs = BaseJobs();
  for (std::size_t f = 0; f < 4; ++f) {
    const double slowdown =
        (congested[f].mean() - baseline[f].mean()) / baseline[f].mean();
    table.AddRow({jobs[f].name, TextTable::Num(baseline[f].mean(), 1),
                  TextTable::Num(congested[f].mean(), 1),
                  TextTable::Percent(slowdown, 1)});
  }
  std::printf("%s", table.Format().c_str());
  std::printf("\npaper: elephants are delayed significantly by the extra "
              "load; the two mice\nare not affected at all (their fair "
              "shares already cover their needs).\n");
  return 0;
}

}  // namespace
}  // namespace tsf

int main(int argc, char** argv) { return tsf::Run(argc, argv); }
