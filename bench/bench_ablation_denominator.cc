// Ablation 1 (DESIGN.md): the share denominator is the single design knob
// separating TSF (unconstrained monopoly h), CDRF (constrained monopoly g),
// and DRF (dominant share). This harness quantifies what each choice does
// to *constrained* jobs: it buckets jobs by how picky they are (fraction of
// the cluster they can use) and reports mean job completion time and mean
// task queueing delay per bucket under each policy.
//
// Expected: CDRF visibly penalizes the pickiest bucket (its denominator
// shrinks with eligibility, so constrained jobs look "expensive"); TSF and
// DRF treat pickiness neutrally.
#include <cstdio>

#include "bench_common.h"
#include "sim/runner.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace tsf {
namespace {

constexpr const char* kBuckets[] = {"<=10% of fleet", "10-30%", "30-70%",
                                    ">70% of fleet"};

std::size_t BucketOf(double eligible_fraction) {
  if (eligible_fraction <= 0.10) return 0;
  if (eligible_fraction <= 0.30) return 1;
  if (eligible_fraction <= 0.70) return 2;
  return 3;
}

int Run(int argc, char** argv) {
  bench::PrintHeader(
      "Ablation — share denominator (h vs g vs dominant share)",
      "Job performance bucketed by placement pickiness, per policy.");
  const bench::MacroConfig config = bench::ParseMacroFlags(argc, argv);
  const std::vector<OnlinePolicy> policies = {
      OnlinePolicy::Tsf(), OnlinePolicy::Cdrf(), OnlinePolicy::Drf()};

  // completion[policy][bucket], task_delay[policy][bucket]
  std::vector<std::vector<Summary>> completion(policies.size(),
                                               std::vector<Summary>(4));
  std::vector<std::vector<Summary>> task_delay(policies.size(),
                                               std::vector<Summary>(4));

  ThreadPool pool(config.threads);
  RunSeeds(
      [&config](std::uint64_t seed) {
        return trace::SynthesizeGoogleWorkload(bench::MakeTraceConfig(config, seed));
      },
      policies, config.first_seed, config.seeds, pool,
      [&](std::uint64_t seed, const std::vector<SimResult>& results) {
        // Recompute per-job eligibility fractions for the bucketing.
        const Workload workload =
            trace::SynthesizeGoogleWorkload(bench::MakeTraceConfig(config, seed));
        std::vector<std::size_t> bucket(workload.jobs.size());
        for (std::size_t j = 0; j < workload.jobs.size(); ++j) {
          const double fraction =
              static_cast<double>(workload.cluster
                                      .Eligibility(workload.jobs[j].spec.constraint)
                                      .Count()) /
              static_cast<double>(config.machines);
          bucket[j] = BucketOf(fraction);
        }
        for (std::size_t k = 0; k < policies.size(); ++k) {
          for (std::size_t j = 0; j < results[k].jobs.size(); ++j)
            completion[k][bucket[j]].Add(results[k].jobs[j].CompletionTime());
          for (const TaskRecord& task : results[k].tasks)
            task_delay[k][bucket[task.job]].Add(task.QueueingDelay());
        }
        std::printf(".");
        std::fflush(stdout);
      });
  std::printf("\n");

  bench::PrintSection("mean job completion time (s) by pickiness bucket");
  TextTable jobs({"bucket", "TSF (n/h)", "CDRF (n/g)", "DRF (dominant)"});
  for (std::size_t b = 0; b < 4; ++b) {
    std::vector<std::string> row = {kBuckets[b]};
    for (std::size_t k = 0; k < policies.size(); ++k)
      row.push_back(TextTable::Num(completion[k][b].mean(), 1));
    jobs.AddRow(std::move(row));
  }
  std::printf("%s", jobs.Format().c_str());

  bench::PrintSection("mean task queueing delay (s) by pickiness bucket");
  TextTable tasks({"bucket", "TSF (n/h)", "CDRF (n/g)", "DRF (dominant)"});
  for (std::size_t b = 0; b < 4; ++b) {
    std::vector<std::string> row = {kBuckets[b]};
    for (std::size_t k = 0; k < policies.size(); ++k)
      row.push_back(TextTable::Num(task_delay[k][b].mean(), 1));
    tasks.AddRow(std::move(row));
  }
  std::printf("%s", tasks.Format().c_str());
  std::printf("\nreading: CDRF's n/g denominator inflates the key of picky "
              "jobs, so the\npickiest bucket queues longest under CDRF; "
              "TSF/DRF are pickiness-neutral.\n");
  return 0;
}

}  // namespace
}  // namespace tsf

int main(int argc, char** argv) { return tsf::Run(argc, argv); }
