// Table I: sharing properties of Per-Machine DRF, DRFH, CDRF, and TSF in
// the presence of placement constraints.
//
// Each ✗ cell is demonstrated with a concrete counterexample (the paper's
// own where it gives one — Figs. 2 and 3 — otherwise a curated witness);
// each ✓ cell is verified on a suite of randomized instances. Conventions
// per cell follow the literature each row cites:
//
//   SI — dedicated-pool sharing incentive. CDRF/DRFH/Per-Machine DRF are
//        checked under the classic equal-partition, equal-weight form;
//        TSF under the paper's generalized form (arbitrary pools, Thm-1
//        weights). Per-Machine DRF is additionally probed with arbitrary
//        pools, where its failure is structural.
//   SP — no profitable demand or constraint lie (randomized probes).
//   EF — no user envies another (Def. 3).
//   PO — no user can gain without another losing (LP test).
//   SMF/SRF — reduction to DRF on one machine / CMMF on one resource.
//
// Note on SRF for DRFH and Per-Machine DRF: the paper marks both ✗. Our
// Per-Machine DRF shows the violation directly. Our DRFH is the *idealized*
// progressive-filling variant, for which single-resource max-min coincides
// with CMMF by construction; the paper's ✗ refers to the deployed DRFH
// heuristic of [30]. The harness prints what it actually measures.
#include <cstdio>
#include <optional>

#include "bench_common.h"
#include "core/offline/policies.h"
#include "core/offline/properties.h"
#include "core/paper_examples.h"
#include "stats/table.h"
#include "util/rng.h"

namespace tsf {
namespace {

struct CellResult {
  bool holds = true;
  std::string detail;  // witness description when !holds, "n/a" if skipped
};

std::string Mark(const CellResult& result) {
  return result.holds ? "yes" : "NO";
}

// Random instance generator shared by all verification cells (same family
// as the property-based tests).
SharingProblem RandomInstance(std::uint64_t seed, std::size_t max_machines = 4,
                              std::size_t max_resources = 3) {
  Rng rng(seed);
  SharingProblem problem;
  const auto machines = static_cast<std::size_t>(rng.Int(2, static_cast<std::int64_t>(max_machines)));
  const auto resources = static_cast<std::size_t>(rng.Int(1, static_cast<std::int64_t>(max_resources)));
  for (std::size_t m = 0; m < machines; ++m) {
    ResourceVector capacity(resources);
    for (std::size_t r = 0; r < resources; ++r) capacity[r] = rng.Uniform(2.0, 20.0);
    problem.cluster.AddMachine(std::move(capacity));
  }
  const auto users = static_cast<std::size_t>(rng.Int(2, 5));
  for (UserId i = 0; i < users; ++i) {
    JobSpec job{.id = i, .name = "u" + std::to_string(i)};
    ResourceVector demand(resources);
    for (std::size_t r = 0; r < resources; ++r) demand[r] = rng.Uniform(0.2, 4.0);
    job.demand = std::move(demand);
    std::vector<MachineId> allowed;
    for (MachineId m = 0; m < machines; ++m)
      if (rng.Chance(0.6)) allowed.push_back(m);
    if (allowed.empty()) allowed.push_back(rng.Below(machines));
    if (allowed.size() < machines) job.constraint = Constraint::Whitelist(allowed);
    problem.jobs.push_back(std::move(job));
  }
  return problem;
}

OfflineSolver SolverFor(OfflinePolicy policy) {
  return [policy](const CompiledProblem& p) { return SolveOffline(policy, p, 0); };
}

// ------------------------------- SI -----------------------------------

CellResult CheckSi(OfflinePolicy policy, std::size_t trials) {
  const OfflineSolver solver = SolverFor(policy);

  if (policy == OfflinePolicy::kPerMachineDrf) {
    // Structural failure under arbitrary pools: B owns m2 outright, A owns
    // m1 outright, but per-machine DRF splits m1 between them.
    SharingProblem witness;
    witness.cluster.AddMachine(ResourceVector{3.0});
    witness.cluster.AddMachine(ResourceVector{3.0});
    JobSpec a{.id = 0, .name = "A", .demand = {1.0}};
    a.constraint = Constraint::Whitelist({0});
    JobSpec b{.id = 1, .name = "B", .demand = {1.0}};
    witness.jobs = {a, b};
    DedicatedPools pools;
    pools.fraction = {{1.0, 0.0}, {0.0, 1.0}};  // A owns m1, B owns m2
    const auto report = CheckSharingIncentive(Compile(witness), pools, solver,
                                              /*theorem1_weights=*/false);
    if (!report.satisfied)
      return {false, "pools {A:m1, B:m2}: A runs " +
                         TextTable::Num(report.shared_tasks[0], 2) + " < k=" +
                         TextTable::Num(report.dedicated_tasks[0], 2)};
    return {true, "curated witness unexpectedly satisfied"};
  }

  if (policy == OfflinePolicy::kDrfh) {
    // Equal-partition failure: shape-mismatched machines starve the user
    // with the large dominant share.
    SharingProblem witness;
    witness.cluster.AddMachine(ResourceVector{4.0, 100.0});
    witness.cluster.AddMachine(ResourceVector{100.0, 4.0});
    witness.jobs = {JobSpec{.id = 0, .name = "small", .demand = {1.0, 1.0}},
                    JobSpec{.id = 1, .name = "ramhog", .demand = {1.0, 25.0}}};
    const CompiledProblem compiled = Compile(witness);
    const auto report = CheckSharingIncentive(
        compiled, EqualPartition(2, 2), solver, /*theorem1_weights=*/false);
    if (!report.satisfied)
      return {false, "equal split: ramhog runs " +
                         TextTable::Num(report.shared_tasks[1], 2) + " < k=" +
                         TextTable::Num(report.dedicated_tasks[1], 2)};
    return {true, "curated witness unexpectedly satisfied"};
  }

  // CDRF: equal partition + equal weights; TSF: random pools + Thm-1
  // weights. Verified over randomized instances.
  const bool theorem1 = policy == OfflinePolicy::kTsf;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    const CompiledProblem problem = Compile(RandomInstance(seed * 71 + 5));
    DedicatedPools pools;
    if (theorem1) {
      Rng rng(seed);
      pools.fraction.assign(problem.num_users,
                            std::vector<double>(problem.num_machines, 0.0));
      for (MachineId m = 0; m < problem.num_machines; ++m) {
        std::vector<double> cuts(problem.num_users);
        double total = 0;
        for (auto& c : cuts) total += (c = rng.Uniform(0.05, 1.0));
        for (UserId i = 0; i < problem.num_users; ++i)
          pools.fraction[i][m] = cuts[i] / total;
      }
    } else {
      pools = EqualPartition(problem.num_users, problem.num_machines);
    }
    const auto report =
        CheckSharingIncentive(problem, pools, solver, theorem1, 1e-4);
    if (!report.satisfied)
      return {false, "violation at seed " + std::to_string(seed) + ": user " +
                         std::to_string(report.violator)};
  }
  return {true, std::to_string(trials) + " random instances"};
}

// ------------------------------- SP -----------------------------------

CellResult CheckSp(OfflinePolicy policy, std::size_t trials) {
  const OfflineSolver solver = SolverFor(policy);

  if (policy == OfflinePolicy::kCdrf) {
    // The paper's Fig. 2 counterexample.
    const CompiledProblem problem = Compile(paper::Fig2Truthful());
    Lie lie;
    DynamicBitset all(problem.num_machines);
    all.SetAll();
    lie.eligible = all;
    const auto outcome = ProbeManipulation(problem, 1, lie, solver);
    if (outcome.profitable())
      return {false, "Fig. 2: u2 gains " + TextTable::Num(outcome.truthful_tasks, 0) +
                         " -> " + TextTable::Num(outcome.lying_tasks, 0) +
                         " tasks by claiming m1"};
    return {true, "Fig. 2 witness unexpectedly unprofitable"};
  }

  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    Rng rng(seed * 1299709 + 11);
    const CompiledProblem problem = Compile(RandomInstance(seed * 37 + 3));
    for (UserId liar = 0; liar < problem.num_users; ++liar) {
      Lie demand_lie;
      ResourceVector claimed = problem.demand[liar];
      for (std::size_t r = 0; r < claimed.dimension(); ++r)
        claimed[r] *= rng.Uniform(0.5, 2.0);
      demand_lie.demand = claimed;
      if (ProbeManipulation(problem, liar, demand_lie, solver).profitable())
        return {false, "demand lie pays at seed " + std::to_string(seed)};

      Lie constraint_lie;
      DynamicBitset mask(problem.num_machines);
      for (MachineId m = 0; m < problem.num_machines; ++m)
        if (rng.Chance(0.7)) mask.Set(m);
      mask.Set(problem.eligible[liar].FindFirst());
      constraint_lie.eligible = mask;
      if (ProbeManipulation(problem, liar, constraint_lie, solver).profitable())
        return {false, "constraint lie pays at seed " + std::to_string(seed)};
    }
  }
  return {true, std::to_string(trials) + " random instances"};
}

// ------------------------------- EF -----------------------------------

CellResult CheckEf(OfflinePolicy policy, std::size_t trials) {
  const OfflineSolver solver = SolverFor(policy);
  if (policy == OfflinePolicy::kCdrf) {
    const CompiledProblem problem = Compile(paper::Fig3());
    const FillingResult result = solver(problem);
    if (const auto envy = FindEnvy(problem, result.allocation))
      return {false, "Fig. 3: u" + std::to_string(envy->envious + 1) +
                         " envies u" + std::to_string(envy->envied + 1) + " (" +
                         TextTable::Num(envy->own_tasks, 1) + " vs " +
                         TextTable::Num(envy->exchanged_tasks, 1) + ")"};
    return {true, "Fig. 3 witness unexpectedly envy-free"};
  }
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    const CompiledProblem problem = Compile(RandomInstance(seed * 53 + 7));
    const FillingResult result = solver(problem);
    if (FindEnvy(problem, result.allocation, 1e-4).has_value())
      return {false, "violation at seed " + std::to_string(seed)};
  }
  return {true, std::to_string(trials) + " random instances"};
}

// ------------------------------- PO -----------------------------------

CellResult CheckPo(OfflinePolicy policy, std::size_t trials) {
  const OfflineSolver solver = SolverFor(policy);
  if (policy == OfflinePolicy::kPerMachineDrf) {
    SharingProblem witness;
    witness.cluster.AddMachine(ResourceVector{12.0, 2.0});
    witness.cluster.AddMachine(ResourceVector{2.0, 12.0});
    witness.jobs = {JobSpec{.id = 0, .name = "cpu", .demand = {1.0, 0.1}},
                    JobSpec{.id = 1, .name = "ram", .demand = {0.1, 1.0}}};
    const CompiledProblem compiled = Compile(witness);
    const FillingResult result = solver(compiled);
    if (const auto improvement =
            FindParetoImprovement(compiled, result.allocation))
      return {false, "user " + std::to_string(improvement->user) + " could go " +
                         TextTable::Num(improvement->current_tasks, 2) + " -> " +
                         TextTable::Num(improvement->achievable_tasks, 2)};
    return {true, "curated witness unexpectedly optimal"};
  }
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    const CompiledProblem problem = Compile(RandomInstance(seed * 97 + 13));
    const FillingResult result = solver(problem);
    if (FindParetoImprovement(problem, result.allocation, 1e-4).has_value())
      return {false, "violation at seed " + std::to_string(seed)};
  }
  return {true, std::to_string(trials) + " random instances"};
}

// ---------------------------- SMF / SRF --------------------------------

CellResult CheckSmf(OfflinePolicy policy, std::size_t trials) {
  const OfflineSolver solver = SolverFor(policy);
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    Rng rng(seed * 61 + 17);
    SharingProblem sharing;
    const auto resources = static_cast<std::size_t>(rng.Int(2, 3));
    ResourceVector capacity(resources);
    for (std::size_t r = 0; r < resources; ++r) capacity[r] = rng.Uniform(4.0, 20.0);
    sharing.cluster.AddMachine(std::move(capacity));
    const auto users = static_cast<std::size_t>(rng.Int(2, 5));
    for (UserId i = 0; i < users; ++i) {
      JobSpec job{.id = i, .name = "u" + std::to_string(i)};
      ResourceVector demand(resources);
      for (std::size_t r = 0; r < resources; ++r) demand[r] = rng.Uniform(0.1, 3.0);
      job.demand = std::move(demand);
      sharing.jobs.push_back(std::move(job));
    }
    const CompiledProblem problem = Compile(sharing);
    if (!MatchesSingleMachineDrf(problem, solver(problem)))
      return {false, "mismatch at seed " + std::to_string(seed)};
  }
  return {true, std::to_string(trials) + " random single-machine instances"};
}

CellResult CheckSrf(OfflinePolicy policy, std::size_t trials) {
  const OfflineSolver solver = SolverFor(policy);

  if (policy == OfflinePolicy::kPerMachineDrf) {
    // Curated: u1 on both machines, u2 pinned to m1. CMMF gives (4,4);
    // per-machine DRF gives (6,2).
    SharingProblem witness;
    witness.cluster.AddMachine(ResourceVector{4.0});
    witness.cluster.AddMachine(ResourceVector{4.0});
    JobSpec u1{.id = 0, .name = "u1", .demand = {1.0}};
    JobSpec u2{.id = 1, .name = "u2", .demand = {1.0}};
    u2.constraint = Constraint::Whitelist({0});
    witness.jobs = {u1, u2};
    const CompiledProblem compiled = Compile(witness);
    if (!MatchesSingleResourceCmmf(compiled, solver(compiled)))
      return {false, "2x4-CPU witness: per-machine split != CMMF"};
    return {true, "curated witness unexpectedly matched"};
  }
  if (policy == OfflinePolicy::kCdrf) {
    const CompiledProblem problem = Compile(paper::Fig3());
    if (!MatchesSingleResourceCmmf(problem, solver(problem)))
      return {false, "Fig. 3: CDRF (1,3,1,..) != CMMF (1.5,1.5,1.5,1.5,1,1,1)"};
    return {true, "Fig. 3 witness unexpectedly matched"};
  }

  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    const CompiledProblem problem = Compile(
        RandomInstance(seed * 89 + 19, /*max_machines=*/4, /*max_resources=*/1));
    if (problem.num_resources != 1) continue;
    if (!MatchesSingleResourceCmmf(problem, solver(problem)))
      return {false, "mismatch at seed " + std::to_string(seed)};
  }
  return {true, "random single-resource instances"};
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"trials", "random instances per verified cell (default 25)"}});
  const auto trials = static_cast<std::size_t>(flags.GetInt("trials", 25));

  bench::PrintHeader(
      "Table I — sharing properties under placement constraints",
      "yes = verified on randomized instances; NO = concrete counterexample.");

  const OfflinePolicy policies[] = {
      OfflinePolicy::kPerMachineDrf, OfflinePolicy::kDrfh, OfflinePolicy::kCdrf,
      OfflinePolicy::kTsf};

  TextTable table({"property", "PerMachineDRF", "DRFH", "CDRF", "TSF"});
  std::vector<std::string> notes;
  using Checker = CellResult (*)(OfflinePolicy, std::size_t);
  const std::pair<const char*, Checker> rows[] = {
      {"SI", &CheckSi},   {"SP", &CheckSp},   {"EF", &CheckEf},
      {"PO", &CheckPo},   {"SMF", &CheckSmf}, {"SRF", &CheckSrf}};

  for (const auto& [name, checker] : rows) {
    std::vector<std::string> row = {name};
    for (const OfflinePolicy policy : policies) {
      const CellResult result = checker(policy, trials);
      row.push_back(Mark(result));
      if (!result.holds)
        notes.push_back(std::string(name) + " / " + ToString(policy) + ": " +
                        result.detail);
    }
    table.AddRow(std::move(row));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s", table.Format().c_str());

  bench::PrintSection("counterexample details");
  for (const std::string& note : notes) std::printf("  %s\n", note.c_str());

  std::printf(
      "\npaper Table I: PerMachineDRF lacks SI/PO/SRF; DRFH lacks SI/SRF;\n"
      "CDRF lacks SP/EF/SRF; TSF satisfies all six. (Our DRFH is the\n"
      "idealized LP variant, which provably coincides with CMMF on one\n"
      "resource; the paper's SRF 'no' refers to the deployed heuristic.)\n");
  return 0;
}

}  // namespace
}  // namespace tsf

int main(int argc, char** argv) { return tsf::Run(argc, argv); }
