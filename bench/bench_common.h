// Shared helpers for the per-figure bench harnesses.
//
// Every harness prints a header naming the paper artifact it regenerates,
// the parameters in effect, and then the table/series in a stable, aligned
// format so runs can be diffed and compared against EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/online/policy.h"
#include "sim/des.h"
#include "stats/cdf.h"
#include "trace/google.h"
#include "util/flags.h"

namespace tsf::bench {

// Prints the standard harness banner.
void PrintHeader(const std::string& artifact, const std::string& description);

// Prints a labelled sub-section.
void PrintSection(const std::string& title);

// The six policies of Sec. VI-B, in the paper's order.
std::vector<OnlinePolicy> EvaluationPolicies();

// The five fair-sharing policies (no FIFO); TSF last.
std::vector<OnlinePolicy> FairPolicies();

// Flags shared by the trace-driven (macro) benches. All have TSF_<NAME>
// environment fallbacks, so e.g. TSF_SEEDS=50 rescales the whole suite.
struct MacroConfig {
  std::size_t machines = 1000;
  std::size_t jobs = 4500;
  std::size_t seeds = 5;
  std::uint64_t first_seed = 1;
  double tightness = 1.0;
  std::size_t threads = 0;  // 0 = hardware concurrency

  // Telemetry (see src/telemetry/): when telemetry_dir is non-empty the
  // metrics registry is enabled for the whole run and a metrics.jsonl
  // snapshot lands there at exit; --trace additionally opens a tracer
  // session whose Chrome trace_event JSON (trace.json) is written at exit.
  std::string telemetry_dir;
  bool trace = false;
  // Virtual-time fairness sampling period for RunSeeds benches; defaults to
  // 10 simulated seconds when telemetry_dir is set, otherwise off.
  double fairness_interval = 0.0;

  // SimOptions carrying the fairness sampling period into Simulate/RunSeeds.
  SimOptions sim_options() const {
    SimOptions options;
    options.fairness_sample_interval = fairness_interval;
    return options;
  }
};

// Declares and parses --machines/--jobs/--seeds/--first-seed/--tightness/
// --threads plus the telemetry trio --telemetry_dir/--trace/
// --fairness-interval. Extra flags may be appended by the caller. When
// --telemetry_dir is given this also enables telemetry and registers an
// atexit hook that writes the metrics snapshot (and the trace, with
// --trace) into that directory.
MacroConfig ParseMacroFlags(
    int argc, char** argv,
    std::vector<std::pair<std::string, std::string>> extra_flags = {},
    const Flags** flags_out = nullptr);

// Writes fairness_<policy>.csv/.jsonl under config.telemetry_dir for the
// representative seed (config.first_seed); no-op for other seeds or when
// telemetry/sampling is off. Call from a RunSeeds reducer.
void MaybeWriteFairnessTimelines(const MacroConfig& config,
                                 const std::vector<OnlinePolicy>& policies,
                                 std::uint64_t seed,
                                 const std::vector<SimResult>& results);

// Builds the Google-like workload for one seed under a macro config.
trace::GoogleTraceConfig MakeTraceConfig(const MacroConfig& config,
                                         std::uint64_t seed);

// Prints a side-by-side CDF table: one column of values per labelled
// series, rows at the given quantiles.
void PrintCdfComparison(const std::string& x_label,
                        const std::vector<std::string>& labels,
                        const std::vector<EmpiricalCdf>& cdfs,
                        const std::vector<double>& quantiles);

// Standard quantile grid used by the CDF figures.
std::vector<double> FigureQuantiles();

}  // namespace tsf::bench
