// Shared helpers for the per-figure bench harnesses.
//
// Every harness prints a header naming the paper artifact it regenerates,
// the parameters in effect, and then the table/series in a stable, aligned
// format so runs can be diffed and compared against EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/online/policy.h"
#include "sim/des.h"
#include "stats/cdf.h"
#include "trace/google.h"
#include "util/flags.h"

namespace tsf::bench {

// Prints the standard harness banner.
void PrintHeader(const std::string& artifact, const std::string& description);

// Prints a labelled sub-section.
void PrintSection(const std::string& title);

// The six policies of Sec. VI-B, in the paper's order.
std::vector<OnlinePolicy> EvaluationPolicies();

// The five fair-sharing policies (no FIFO); TSF last.
std::vector<OnlinePolicy> FairPolicies();

// Flags shared by the trace-driven (macro) benches. All have TSF_<NAME>
// environment fallbacks, so e.g. TSF_SEEDS=50 rescales the whole suite.
struct MacroConfig {
  std::size_t machines = 1000;
  std::size_t jobs = 4500;
  std::size_t seeds = 5;
  std::uint64_t first_seed = 1;
  double tightness = 1.0;
  std::size_t threads = 0;  // 0 = hardware concurrency
};

// Declares and parses --machines/--jobs/--seeds/--first-seed/--tightness/
// --threads. Extra flags may be appended by the caller.
MacroConfig ParseMacroFlags(
    int argc, char** argv,
    std::vector<std::pair<std::string, std::string>> extra_flags = {},
    const Flags** flags_out = nullptr);

// Builds the Google-like workload for one seed under a macro config.
trace::GoogleTraceConfig MakeTraceConfig(const MacroConfig& config,
                                         std::uint64_t seed);

// Prints a side-by-side CDF table: one column of values per labelled
// series, rows at the given quantiles.
void PrintCdfComparison(const std::string& x_label,
                        const std::vector<std::string>& labels,
                        const std::vector<EmpiricalCdf>& cdfs,
                        const std::vector<double>& quantiles);

// Standard quantile grid used by the CDF figures.
std::vector<double> FigureQuantiles();

}  // namespace tsf::bench
