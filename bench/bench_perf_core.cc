// Engineering microbenchmarks (google-benchmark): the cost of the solver
// primitives behind the reproduction — LP solves, offline progressive
// filling, the online scheduler's serve loop, and a full trace-driven
// simulation step. Not a paper artifact; documents the laptop-scale budget
// every harness in this repo runs within.
#include <benchmark/benchmark.h>

#include "core/offline/filling_engine.h"
#include "core/offline/policies.h"
#include "core/online/scheduler.h"
#include "lp/simplex.h"
#include "sim/des.h"
#include "trace/google.h"
#include "util/rng.h"

namespace tsf {
namespace {

// --- LP: dense random feasible programs of growing size. ---
void BM_SimplexSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  lp::Problem problem(n);
  std::vector<double> objective(n);
  for (auto& c : objective) c = rng.Uniform(0.1, 1.0);
  problem.SetObjective(objective);
  for (std::size_t row = 0; row < n; ++row) {
    std::vector<double> coefficients(n);
    for (auto& a : coefficients) a = rng.Uniform(0.0, 1.0);
    problem.AddConstraint(std::move(coefficients), lp::Relation::kLessEqual,
                          rng.Uniform(1.0, 5.0));
  }
  for (auto _ : state) {
    const lp::Solution solution = problem.Solve();
    benchmark::DoNotOptimize(solution.objective);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimplexSolve)->RangeMultiplier(2)->Range(8, 128)->Complexity();

// --- Offline progressive filling on random constrained instances. ---
SharingProblem RandomSharing(std::size_t users, std::size_t machines,
                             std::uint64_t seed) {
  Rng rng(seed);
  SharingProblem problem;
  for (std::size_t m = 0; m < machines; ++m) {
    ResourceVector capacity(2);
    capacity[0] = rng.Uniform(8.0, 32.0);
    capacity[1] = rng.Uniform(8.0, 64.0);
    problem.cluster.AddMachine(std::move(capacity));
  }
  for (UserId i = 0; i < users; ++i) {
    JobSpec job{.id = i, .name = "u" + std::to_string(i)};
    ResourceVector demand(2);
    demand[0] = rng.Uniform(0.5, 4.0);
    demand[1] = rng.Uniform(0.5, 8.0);
    job.demand = std::move(demand);
    std::vector<MachineId> allowed;
    for (MachineId m = 0; m < machines; ++m)
      if (rng.Chance(0.7)) allowed.push_back(m);
    if (allowed.empty()) allowed.push_back(rng.Below(machines));
    if (allowed.size() < machines) job.constraint = Constraint::Whitelist(allowed);
    problem.jobs.push_back(std::move(job));
  }
  return problem;
}

void BM_ProgressiveFillingTsf(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  const CompiledProblem problem = Compile(RandomSharing(users, users, 11));
  for (auto _ : state) {
    const FillingResult result = SolveTsf(problem);
    benchmark::DoNotOptimize(result.shares.data());
  }
}
BENCHMARK(BM_ProgressiveFillingTsf)->RangeMultiplier(2)->Range(2, 64);

// --- One warm FREEZE probe branching off a solved round LP: clone the
// simplex state, floor every other active user, re-solve warm. ---
void BM_FreezeProbe(benchmark::State& state) {
  const CompiledProblem problem = Compile(RandomSharing(16, 16, 11));
  const EdgeLayout layout(problem);
  FillingEngine engine(
      MakeFillingSpec(problem, layout, TsfDenominator(problem)), {});
  double share = 0.0;
  std::vector<double> x;
  TSF_CHECK(engine.SolveRound(&share, &x));
  std::vector<double> totals(problem.num_users, 0.0);
  for (UserId i = 0; i < problem.num_users; ++i)
    for (const std::size_t e : layout.user_edges[i]) totals[i] += x[e];
  std::vector<bool> probe(problem.num_users, false);
  probe[0] = true;
  std::vector<double> max_share;
  for (auto _ : state) {
    engine.ProbeMaxShares(probe, totals, &max_share);
    benchmark::DoNotOptimize(max_share.data());
  }
}
BENCHMARK(BM_FreezeProbe);

// --- Online scheduler: steady-state serve loop. ---
void BM_OnlineServeMachine(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  std::vector<ResourceVector> machines(50, ResourceVector{1.0, 1.0});
  OnlineScheduler scheduler(std::move(machines), OnlinePolicy::Tsf());
  Rng rng(3);
  for (UserId i = 0; i < users; ++i) {
    OnlineUserSpec spec;
    spec.demand = ResourceVector{0.05, 0.05};
    DynamicBitset eligible(50);
    for (std::size_t m = 0; m < 50; ++m)
      if (rng.Chance(0.5)) eligible.Set(m);
    if (eligible.None()) eligible.Set(0);
    spec.eligible = std::move(eligible);
    spec.h = spec.g = 1000;
    spec.pending = 1 << 20;
    scheduler.AddUser(std::move(spec));
  }
  for (auto _ : state) {
    // Keep the cluster churning: serve a machine, then complete everything
    // placed so the next iteration sees the same state.
    std::vector<std::pair<UserId, MachineId>> placed;
    scheduler.ServeMachine(7, [&](UserId u, MachineId m) { placed.emplace_back(u, m); });
    for (const auto& [u, m] : placed) scheduler.OnTaskFinish(u, m);
    benchmark::DoNotOptimize(placed.size());
  }
}
BENCHMARK(BM_OnlineServeMachine)->RangeMultiplier(4)->Range(4, 256);

// --- End-to-end trace simulation throughput (tasks/second). ---
void BM_TraceSimulation(benchmark::State& state) {
  trace::GoogleTraceConfig config;
  config.num_machines = 200;
  config.num_jobs = 500;
  config.seed = 5;
  const Workload workload = trace::SynthesizeGoogleWorkload(config);
  for (auto _ : state) {
    const SimResult result = Simulate(workload, OnlinePolicy::Tsf());
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.TotalTasks()));
}
BENCHMARK(BM_TraceSimulation)->Unit(benchmark::kMillisecond);

// --- Workload synthesis throughput. ---
void BM_WorkloadSynthesis(benchmark::State& state) {
  trace::GoogleTraceConfig config;
  config.num_machines = 1000;
  config.num_jobs = 4500;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    const Workload workload = trace::SynthesizeGoogleWorkload(config);
    benchmark::DoNotOptimize(workload.TotalTasks());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4500);
}
BENCHMARK(BM_WorkloadSynthesis)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tsf

// How *this* binary was compiled. The library_build_type the JSON context
// already carries describes libbenchmark's own build, which is debug on
// some distro packages even when our code is optimized —
// tools/bench_regression.sh gates on this key instead so a debug-built
// baseline can never be recorded again.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("tsf_build_type", "release");
#else
  benchmark::AddCustomContext("tsf_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
