// Fig. 2 (Sec. IV-B3): constrained CDRF is not strategy-proof.
//
// Regenerates both panels: (a) the truthful allocation — u1: 12 tasks,
// u2: 4 tasks, work slowdown 2/3 each — and (b) the allocation after u2
// falsely claims it can run on m1, which hands u2 six tasks. Also runs the
// same lie under TSF to show it does not pay there (Theorem 2).
#include <cstdio>

#include "bench_common.h"
#include "core/offline/policies.h"
#include "core/offline/properties.h"
#include "core/paper_examples.h"
#include "stats/table.h"

namespace tsf {
namespace {

void PrintAllocation(const char* title, const CompiledProblem& problem,
                     const FillingResult& result) {
  bench::PrintSection(title);
  std::printf("%s", result.allocation.ToString(problem).c_str());
}

int Run() {
  bench::PrintHeader(
      "Fig. 2 — constrained CDRF is not strategy-proof",
      "Two <18 CPU, 18 GB> machines; u1 <1,2> anywhere, u2 <1,3> on m2 only.");

  const CompiledProblem honest = Compile(paper::Fig2Truthful());
  const CompiledProblem lied = Compile(paper::Fig2Lie());

  PrintAllocation("(a) constrained CDRF, both users truthful", honest,
                  SolveCdrf(honest));
  PrintAllocation("(b) constrained CDRF, u2 claims m1 as well", lied,
                  SolveCdrf(lied));

  bench::PrintSection("manipulation outcome (real tasks completed)");
  Lie lie;
  DynamicBitset all(honest.num_machines);
  all.SetAll();
  lie.eligible = all;

  TextTable table({"policy", "truthful", "lying", "lie profitable?"});
  for (const auto& [name, solver] :
       {std::pair<std::string, OfflineSolver>{
            "CDRF", [](const CompiledProblem& p) { return SolveCdrf(p); }},
        std::pair<std::string, OfflineSolver>{
            "TSF", [](const CompiledProblem& p) { return SolveTsf(p); }}}) {
    const ManipulationOutcome outcome = ProbeManipulation(honest, 1, lie, solver);
    table.AddRow({name, TextTable::Num(outcome.truthful_tasks, 2),
                  TextTable::Num(outcome.lying_tasks, 2),
                  outcome.profitable() ? "YES (violation)" : "no"});
  }
  std::printf("%s", table.Format().c_str());
  std::printf(
      "\npaper: u2 gains 4 -> 6 tasks by lying under CDRF; TSF is immune.\n");
  return 0;
}

}  // namespace
}  // namespace tsf

int main() { return tsf::Run(); }
