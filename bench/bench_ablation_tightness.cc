// Ablation 2 (DESIGN.md): constraint tightness. Sweeps the constraint
// synthesis multiplier from 0 (no constraints: every policy should behave
// like its unconstrained self, TSF ~ DRF) upward (tight: eligibility sets
// shrink and constraint-aware sharing starts to matter) and reports each
// fair policy's mean task queueing delay relative to TSF at that tightness.
#include <cstdio>

#include "bench_common.h"
#include "sim/runner.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace tsf {
namespace {

int Run(int argc, char** argv) {
  bench::PrintHeader("Ablation — constraint tightness sweep",
                     "Mean task queueing delay (normalized to TSF = 1.0).");
  const bench::MacroConfig base = bench::ParseMacroFlags(argc, argv);
  const std::vector<OnlinePolicy> policies = bench::FairPolicies();
  const double sweep[] = {0.0, 0.5, 1.0, 1.5};

  TextTable table({"tightness", "DRF", "CDRF", "CPU", "Mem", "TSF mean (s)"});
  ThreadPool pool(base.threads);
  for (const double tightness : sweep) {
    bench::MacroConfig config = base;
    config.tightness = tightness;
    std::vector<Summary> delay(policies.size());
    RunSeeds(
        [&config](std::uint64_t seed) {
          return trace::SynthesizeGoogleWorkload(
              bench::MakeTraceConfig(config, seed));
        },
        policies, config.first_seed, config.seeds, pool,
        [&](std::uint64_t, const std::vector<SimResult>& results) {
          for (std::size_t k = 0; k < policies.size(); ++k)
            for (const double d : results[k].TaskQueueingDelays())
              delay[k].Add(d);
          std::printf(".");
          std::fflush(stdout);
        });

    const double tsf_mean = delay.back().mean();
    std::vector<std::string> row = {TextTable::Num(tightness, 1)};
    for (std::size_t k = 0; k + 1 < policies.size(); ++k)
      row.push_back(tsf_mean > 0
                        ? TextTable::Num(delay[k].mean() / tsf_mean, 3)
                        : "-");
    row.push_back(TextTable::Num(tsf_mean, 1));
    table.AddRow(std::move(row));
  }
  std::printf("\n%s", table.Format().c_str());
  std::printf("\nreading: at tightness 0 all constraint-blind policies "
              "coincide with TSF\n(ratios ~1); as constraints tighten, "
              "CDRF's ratio drifts above 1.\n");
  return 0;
}

}  // namespace
}  // namespace tsf

int main(int argc, char** argv) { return tsf::Run(argc, argv); }
