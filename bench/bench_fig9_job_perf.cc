// Fig. 9 (Sec. VI-B2): job queueing delay and job completion time CDFs for
// the six policies (FIFO, DRF, CDRF, CPU, Mem, TSF) on the trace-driven
// simulation. Expected shape: FIFO suffers starvation (long queueing tail,
// up to ~6x slower completions for most jobs); the five fair policies track
// each other closely at the job level because mice dominate the population.
#include <cstdio>

#include "bench_common.h"
#include "sim/runner.h"
#include "stats/table.h"

namespace tsf {
namespace {

int Run(int argc, char** argv) {
  bench::PrintHeader("Fig. 9 — job queueing delay and completion time",
                     "Six policies on the Google-like trace-driven workload.");
  const bench::MacroConfig config = bench::ParseMacroFlags(argc, argv);
  const std::vector<OnlinePolicy> policies = bench::EvaluationPolicies();

  std::vector<EmpiricalCdf> queueing(policies.size()), completion(policies.size());
  std::vector<std::size_t> salient(policies.size(), 0);
  std::size_t total_jobs = 0;

  ThreadPool pool(config.threads);
  RunSeeds(
      [&config](std::uint64_t seed) {
        return trace::SynthesizeGoogleWorkload(bench::MakeTraceConfig(config, seed));
      },
      policies, config.first_seed, config.seeds, pool,
      [&](std::uint64_t seed, const std::vector<SimResult>& results) {
        for (std::size_t k = 0; k < results.size(); ++k) {
          for (const double d : results[k].JobQueueingDelays()) {
            queueing[k].Add(d);
            salient[k] += d > 5.0;
          }
          completion[k].AddAll(results[k].JobCompletionTimes());
        }
        total_jobs += results[0].jobs.size();
        bench::MaybeWriteFairnessTimelines(config, policies, seed, results);
        std::printf(".");
        std::fflush(stdout);
      },
      config.sim_options());
  std::printf("\n");

  std::vector<std::string> labels;
  for (const OnlinePolicy& policy : policies) labels.push_back(policy.name);

  bench::PrintSection("Fig. 9a — job queueing delay (s)");
  bench::PrintCdfComparison("job queueing delay", labels, queueing,
                            bench::FigureQuantiles());
  std::printf("\nfraction of jobs with salient (>5 s) queueing delay:\n");
  for (std::size_t k = 0; k < policies.size(); ++k)
    std::printf("  %-5s %s\n", policies[k].name.c_str(),
                TextTable::Percent(static_cast<double>(salient[k]) /
                                       static_cast<double>(total_jobs), 1)
                    .c_str());

  bench::PrintSection("Fig. 9b — job completion time (s)");
  bench::PrintCdfComparison("job completion time", labels, completion,
                            bench::FigureQuantiles());

  const double fifo_p90 = completion.front().Quantile(0.9);
  const double tsf_p90 = completion.back().Quantile(0.9);
  std::printf("\nFIFO p90 / TSF p90 completion: %.2fx (paper: fair sharing "
              "speeds up 80%% of jobs, up to 6x)\n",
              fifo_p90 / tsf_p90);
  return 0;
}

}  // namespace
}  // namespace tsf

int main(int argc, char** argv) { return tsf::Run(argc, argv); }
