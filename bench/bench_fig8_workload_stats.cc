// Fig. 8 (Sec. VI-B1): statistics of the synthesized input workload.
//
// (a) CDF of the number of machines each job can run on — calibrated so
//     <20 % of jobs can run on all 1000 machines and ~50 % on <= 200;
// (b) CDF of job size in tasks — mice-dominated (>60 % single-task),
//     heavy-tailed to ~20k tasks, ~180k tasks over 4.5k jobs.
#include <cstdio>

#include "bench_common.h"
#include "stats/table.h"
#include "trace/google.h"

namespace tsf {
namespace {

int Run(int argc, char** argv) {
  bench::PrintHeader("Fig. 8 — input workload statistics",
                     "Synthesized Google-like workload (see DESIGN.md).");
  const bench::MacroConfig config = bench::ParseMacroFlags(argc, argv);

  EmpiricalCdf eligibility, job_size;
  double total_tasks = 0, total_jobs = 0;
  std::size_t runs_everywhere = 0, runs_on_fifth = 0, singles = 0, small = 0;
  long max_size = 0;

  for (std::uint64_t k = 0; k < config.seeds; ++k) {
    const Workload workload =
        trace::SynthesizeGoogleWorkload(bench::MakeTraceConfig(config, config.first_seed + k));
    for (const SimJob& job : workload.jobs) {
      const std::size_t eligible =
          workload.cluster.Eligibility(job.spec.constraint).Count();
      eligibility.Add(static_cast<double>(eligible));
      job_size.Add(static_cast<double>(job.spec.num_tasks));
      total_tasks += static_cast<double>(job.spec.num_tasks);
      ++total_jobs;
      runs_everywhere += eligible == config.machines;
      runs_on_fifth += eligible <= config.machines / 5;
      singles += job.spec.num_tasks == 1;
      small += job.spec.num_tasks <= 10;
      max_size = std::max(max_size, job.spec.num_tasks);
    }
  }

  bench::PrintSection("Fig. 8a — machines a job can run on (CDF)");
  std::printf("%s", eligibility.FormatSeries(11, "   #machines").c_str());
  std::printf("  fraction able to run on ALL machines: %s (paper: <20%%)\n",
              TextTable::Percent(runs_everywhere / total_jobs, 1).c_str());
  std::printf("  fraction able to run on <=%zu machines: %s (paper: ~50%%)\n",
              config.machines / 5,
              TextTable::Percent(runs_on_fifth / total_jobs, 1).c_str());

  bench::PrintSection("Fig. 8b — job size in tasks (CDF)");
  std::printf("%s", job_size.FormatSeries(11, "      #tasks").c_str());
  std::printf("  single-task jobs: %s (paper: >60%%)\n",
              TextTable::Percent(singles / total_jobs, 1).c_str());
  std::printf("  small jobs (<=10 tasks): %s (paper: 86%%)\n",
              TextTable::Percent(small / total_jobs, 1).c_str());
  std::printf("  biggest job: %ld tasks (paper: ~20k)\n", max_size);
  std::printf("  mean tasks per workload: %.0f (paper: ~180k over 4500 jobs)\n",
              total_tasks / static_cast<double>(config.seeds));
  return 0;
}

}  // namespace
}  // namespace tsf

int main(int argc, char** argv) { return tsf::Run(argc, argv); }
