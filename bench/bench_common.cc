#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "stats/table.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/log.h"

namespace tsf::bench {

void PrintHeader(const std::string& artifact, const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("================================================================\n");
}

void PrintSection(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

std::vector<OnlinePolicy> EvaluationPolicies() {
  return {OnlinePolicy::Fifo(), OnlinePolicy::Drf(),  OnlinePolicy::Cdrf(),
          OnlinePolicy::Cmmf(0, "CPU"), OnlinePolicy::Cmmf(1, "Mem"),
          OnlinePolicy::Tsf()};
}

std::vector<OnlinePolicy> FairPolicies() {
  return {OnlinePolicy::Drf(), OnlinePolicy::Cdrf(), OnlinePolicy::Cmmf(0, "CPU"),
          OnlinePolicy::Cmmf(1, "Mem"), OnlinePolicy::Tsf()};
}

namespace {

// Owned by the atexit hook below; set once per process by ParseMacroFlags.
std::string* g_telemetry_dir = nullptr;

void WriteTelemetryArtifacts() {
  if (g_telemetry_dir == nullptr) return;
  const std::string metrics_path = *g_telemetry_dir + "/metrics.jsonl";
  if (!telemetry::Registry::Get().WriteJsonlSnapshot(metrics_path))
    std::fprintf(stderr, "telemetry: cannot write %s\n", metrics_path.c_str());
  else
    std::fprintf(stderr, "telemetry: wrote %s\n", metrics_path.c_str());
  if (telemetry::TraceActive()) {
    telemetry::Tracer::Get().Stop();
    const std::string trace_path = *g_telemetry_dir + "/trace.json";
    if (!telemetry::Tracer::Get().WriteChromeTrace(trace_path))
      std::fprintf(stderr, "telemetry: cannot write %s\n", trace_path.c_str());
    else
      std::fprintf(stderr,
                   "telemetry: wrote %s (open in https://ui.perfetto.dev "
                   "or chrome://tracing)\n",
                   trace_path.c_str());
  }
}

}  // namespace

MacroConfig ParseMacroFlags(
    int argc, char** argv,
    std::vector<std::pair<std::string, std::string>> extra_flags,
    const Flags** flags_out) {
  std::vector<std::pair<std::string, std::string>> allowed = {
      {"machines", "cluster size (paper: 1000)"},
      {"jobs", "number of jobs (paper: 4500)"},
      {"seeds", "simulation repetitions (paper: 50; default 5)"},
      {"first-seed", "first RNG seed (default 1)"},
      {"tightness", "constraint tightness multiplier (default 1.0)"},
      {"threads", "worker threads (default: hardware)"},
      {"telemetry_dir", "directory for metrics/trace/timeline output "
                        "(enables telemetry)"},
      {"trace", "record a Chrome trace_event JSON (needs --telemetry_dir)"},
      {"fairness-interval", "fairness sampling period in simulated seconds "
                            "(default 10 when telemetry is on)"},
  };
  for (auto& flag : extra_flags) allowed.push_back(std::move(flag));

  static const Flags* parsed = nullptr;  // owned for the process lifetime
  auto* flags = new Flags(argc, argv, allowed);
  parsed = flags;
  if (flags_out != nullptr) *flags_out = parsed;

  MacroConfig config;
  config.machines = static_cast<std::size_t>(flags->GetInt("machines", 1000));
  config.jobs = static_cast<std::size_t>(flags->GetInt("jobs", 4500));
  config.seeds = static_cast<std::size_t>(flags->GetInt("seeds", 5));
  config.first_seed = static_cast<std::uint64_t>(flags->GetInt("first-seed", 1));
  config.tightness = flags->GetDouble("tightness", 1.0);
  config.threads = static_cast<std::size_t>(flags->GetInt("threads", 0));
  config.telemetry_dir = flags->GetString("telemetry_dir", "");
  config.trace = flags->GetBool("trace", false);
  config.fairness_interval = flags->GetDouble(
      "fairness-interval", config.telemetry_dir.empty() ? 0.0 : 10.0);
  TSF_CHECK_GT(config.machines, 0u);
  TSF_CHECK_GT(config.jobs, 0u);
  TSF_CHECK_GT(config.seeds, 0u);

  if (!config.telemetry_dir.empty()) {
    std::error_code error;
    std::filesystem::create_directories(config.telemetry_dir, error);
    if (error) {
      std::fprintf(stderr, "error: cannot create --telemetry_dir %s: %s\n",
                   config.telemetry_dir.c_str(), error.message().c_str());
      std::exit(2);
    }
    telemetry::SetEnabled(true);
    if (config.trace) telemetry::Tracer::Get().Start();
    g_telemetry_dir = new std::string(config.telemetry_dir);
    std::atexit(WriteTelemetryArtifacts);
  } else if (config.trace) {
    TSF_LOG(WARN) << "--trace without --telemetry_dir has no effect";
  }

  std::printf("config: machines=%zu jobs=%zu seeds=%zu first-seed=%llu "
              "tightness=%.2f%s%s\n\n",
              config.machines, config.jobs, config.seeds,
              static_cast<unsigned long long>(config.first_seed),
              config.tightness,
              config.telemetry_dir.empty()
                  ? ""
                  : (" telemetry_dir=" + config.telemetry_dir).c_str(),
              config.trace ? " trace=on" : "");
  return config;
}

void MaybeWriteFairnessTimelines(const MacroConfig& config,
                                 const std::vector<OnlinePolicy>& policies,
                                 std::uint64_t seed,
                                 const std::vector<SimResult>& results) {
  if (config.telemetry_dir.empty() || config.fairness_interval <= 0.0) return;
  if (seed != config.first_seed) return;  // one representative seed
  TSF_CHECK_EQ(policies.size(), results.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const std::string stem =
        config.telemetry_dir + "/fairness_" + policies[p].name;
    if (!telemetry::WriteFairnessCsv(stem + ".csv",
                                     results[p].fairness_timeline) ||
        !telemetry::WriteFairnessJsonl(stem + ".jsonl", policies[p].name,
                                       results[p].fairness_timeline))
      std::fprintf(stderr, "telemetry: cannot write %s.{csv,jsonl}\n",
                   stem.c_str());
  }
}

trace::GoogleTraceConfig MakeTraceConfig(const MacroConfig& config,
                                         std::uint64_t seed) {
  trace::GoogleTraceConfig trace_config;
  trace_config.num_machines = config.machines;
  trace_config.num_jobs = config.jobs;
  trace_config.constraint_tightness = config.tightness;
  trace_config.seed = seed;
  return trace_config;
}

std::vector<double> FigureQuantiles() {
  return {0.10, 0.25, 0.40, 0.50, 0.60, 0.75, 0.90, 0.95, 0.99};
}

void PrintCdfComparison(const std::string& x_label,
                        const std::vector<std::string>& labels,
                        const std::vector<EmpiricalCdf>& cdfs,
                        const std::vector<double>& quantiles) {
  TSF_CHECK_EQ(labels.size(), cdfs.size());
  std::vector<std::string> header = {"quantile"};
  for (const std::string& label : labels) header.push_back(label);
  TextTable table(std::move(header));
  for (const double q : quantiles) {
    std::vector<std::string> row = {TextTable::Percent(q, 0)};
    for (const EmpiricalCdf& cdf : cdfs)
      row.push_back(cdf.empty() ? "-" : TextTable::Num(cdf.Quantile(q), 1));
    table.AddRow(std::move(row));
  }
  std::printf("%s (rows: CDF quantiles)\n%s", x_label.c_str(),
              table.Format().c_str());
}

}  // namespace tsf::bench
