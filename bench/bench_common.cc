#include "bench_common.h"

#include <cstdio>

#include "stats/table.h"
#include "util/check.h"

namespace tsf::bench {

void PrintHeader(const std::string& artifact, const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("================================================================\n");
}

void PrintSection(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

std::vector<OnlinePolicy> EvaluationPolicies() {
  return {OnlinePolicy::Fifo(), OnlinePolicy::Drf(),  OnlinePolicy::Cdrf(),
          OnlinePolicy::Cmmf(0, "CPU"), OnlinePolicy::Cmmf(1, "Mem"),
          OnlinePolicy::Tsf()};
}

std::vector<OnlinePolicy> FairPolicies() {
  return {OnlinePolicy::Drf(), OnlinePolicy::Cdrf(), OnlinePolicy::Cmmf(0, "CPU"),
          OnlinePolicy::Cmmf(1, "Mem"), OnlinePolicy::Tsf()};
}

MacroConfig ParseMacroFlags(
    int argc, char** argv,
    std::vector<std::pair<std::string, std::string>> extra_flags,
    const Flags** flags_out) {
  std::vector<std::pair<std::string, std::string>> allowed = {
      {"machines", "cluster size (paper: 1000)"},
      {"jobs", "number of jobs (paper: 4500)"},
      {"seeds", "simulation repetitions (paper: 50; default 5)"},
      {"first-seed", "first RNG seed (default 1)"},
      {"tightness", "constraint tightness multiplier (default 1.0)"},
      {"threads", "worker threads (default: hardware)"},
  };
  for (auto& flag : extra_flags) allowed.push_back(std::move(flag));

  static const Flags* parsed = nullptr;  // owned for the process lifetime
  auto* flags = new Flags(argc, argv, allowed);
  parsed = flags;
  if (flags_out != nullptr) *flags_out = parsed;

  MacroConfig config;
  config.machines = static_cast<std::size_t>(flags->GetInt("machines", 1000));
  config.jobs = static_cast<std::size_t>(flags->GetInt("jobs", 4500));
  config.seeds = static_cast<std::size_t>(flags->GetInt("seeds", 5));
  config.first_seed = static_cast<std::uint64_t>(flags->GetInt("first-seed", 1));
  config.tightness = flags->GetDouble("tightness", 1.0);
  config.threads = static_cast<std::size_t>(flags->GetInt("threads", 0));
  TSF_CHECK_GT(config.machines, 0u);
  TSF_CHECK_GT(config.jobs, 0u);
  TSF_CHECK_GT(config.seeds, 0u);

  std::printf("config: machines=%zu jobs=%zu seeds=%zu first-seed=%llu "
              "tightness=%.2f\n\n",
              config.machines, config.jobs, config.seeds,
              static_cast<unsigned long long>(config.first_seed),
              config.tightness);
  return config;
}

trace::GoogleTraceConfig MakeTraceConfig(const MacroConfig& config,
                                         std::uint64_t seed) {
  trace::GoogleTraceConfig trace_config;
  trace_config.num_machines = config.machines;
  trace_config.num_jobs = config.jobs;
  trace_config.constraint_tightness = config.tightness;
  trace_config.seed = seed;
  return trace_config;
}

std::vector<double> FigureQuantiles() {
  return {0.10, 0.25, 0.40, 0.50, 0.60, 0.75, 0.90, 0.95, 0.99};
}

void PrintCdfComparison(const std::string& x_label,
                        const std::vector<std::string>& labels,
                        const std::vector<EmpiricalCdf>& cdfs,
                        const std::vector<double>& quantiles) {
  TSF_CHECK_EQ(labels.size(), cdfs.size());
  std::vector<std::string> header = {"quantile"};
  for (const std::string& label : labels) header.push_back(label);
  TextTable table(std::move(header));
  for (const double q : quantiles) {
    std::vector<std::string> row = {TextTable::Percent(q, 0)};
    for (const EmpiricalCdf& cdf : cdfs)
      row.push_back(cdf.empty() ? "-" : TextTable::Num(cdf.Quantile(q), 1));
    table.AddRow(std::move(row));
  }
  std::printf("%s (rows: CDF quantiles)\n%s", x_label.c_str(),
              table.Format().c_str());
}

}  // namespace tsf::bench
