// Fig. 4 (Sec. V-A): the TSF running example.
//
// Machines <9,12>, <3,4>, <9,12>; u1 <1,2> on {m1,m2}, u2 <3,1> on {m2},
// u3 <1,4> anywhere. The paper's TSF allocation: 6 / 1 / 3 tasks with task
// shares 3/7, 1/7, 3/7. This harness regenerates it via offline progressive
// filling and prints the per-round water-filling levels.
#include <cstdio>

#include "bench_common.h"
#include "core/offline/policies.h"
#include "core/paper_examples.h"
#include "stats/table.h"

namespace tsf {
namespace {

int Run() {
  bench::PrintHeader("Fig. 4 — TSF running example",
                     "Expected: tasks (6, 1, 3); task shares (3/7, 1/7, 3/7).");

  const CompiledProblem problem = Compile(paper::Fig4());
  const FillingResult result = SolveTsf(problem);

  bench::PrintSection("monopoly task counts");
  TextTable monopoly({"user", "h (unconstrained)", "g (constrained)"});
  for (UserId i = 0; i < problem.num_users; ++i)
    monopoly.AddRow({"u" + std::to_string(i + 1),
                     TextTable::Num(problem.h[i], 1),
                     TextTable::Num(problem.g[i], 1)});
  std::printf("%s", monopoly.Format().c_str());

  bench::PrintSection("TSF allocation (progressive filling)");
  std::printf("%s", result.allocation.ToString(problem).c_str());

  bench::PrintSection("water-filling rounds");
  for (std::size_t t = 0; t < result.round_levels.size(); ++t)
    std::printf("  round %zu: share level %.6f\n", t + 1,
                result.round_levels[t]);

  TextTable shares({"user", "tasks", "task share", "paper"});
  const char* expected[] = {"3/7", "1/7", "3/7"};
  for (UserId i = 0; i < problem.num_users; ++i)
    shares.AddRow({"u" + std::to_string(i + 1),
                   TextTable::Num(result.allocation.UserTasks(i), 2),
                   TextTable::Num(result.shares[i], 4), expected[i]});
  bench::PrintSection("summary");
  std::printf("%s", shares.Format().c_str());
  return 0;
}

}  // namespace
}  // namespace tsf

int main() { return tsf::Run(); }
