// Ablation 3 (DESIGN.md): how closely the practical online algorithm
// (Sec. V-D: greedy, non-preemptive, indivisible tasks) tracks the ideal
// offline progressive-filling allocation (Algorithm 1: divisible tasks, LP
// per round).
//
// Setup: random static instances (every job present from t=0 with a large
// backlog of long tasks). The online scheduler's steady-state running-task
// counts are compared against the offline TSF allocation; we report the
// mean and worst relative task-share gap.
#include <cstdio>

#include "bench_common.h"
#include "core/offline/policies.h"
#include "core/online/scheduler.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "util/rng.h"

namespace tsf {
namespace {

SharingProblem RandomInstance(std::uint64_t seed) {
  Rng rng(seed);
  SharingProblem problem;
  const auto machines = static_cast<std::size_t>(rng.Int(3, 8));
  for (std::size_t m = 0; m < machines; ++m) {
    ResourceVector capacity(2);
    capacity[0] = rng.Uniform(8.0, 32.0);
    capacity[1] = rng.Uniform(8.0, 64.0);
    problem.cluster.AddMachine(std::move(capacity));
  }
  const auto users = static_cast<std::size_t>(rng.Int(2, 6));
  for (UserId i = 0; i < users; ++i) {
    JobSpec job{.id = i, .name = "u" + std::to_string(i)};
    ResourceVector demand(2);
    demand[0] = rng.Uniform(0.5, 4.0);
    demand[1] = rng.Uniform(0.5, 8.0);
    job.demand = std::move(demand);
    std::vector<MachineId> allowed;
    for (MachineId m = 0; m < machines; ++m)
      if (rng.Chance(0.7)) allowed.push_back(m);
    if (allowed.empty()) allowed.push_back(rng.Below(machines));
    if (allowed.size() < machines) job.constraint = Constraint::Whitelist(allowed);
    problem.jobs.push_back(std::move(job));
  }
  return problem;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv, {{"instances", "random instances (default 200)"}});
  const auto instances = static_cast<std::uint64_t>(flags.GetInt("instances", 200));

  bench::PrintHeader(
      "Ablation — online greedy vs offline LP progressive filling",
      "Steady-state task shares of the online algorithm vs Algorithm 1.");

  Summary gap_mean;           // per-instance mean relative share gap
  Summary utilization_ratio;  // online tasks / offline tasks (aggregate)
  double worst_gap = 0.0;
  std::uint64_t worst_seed = 0;

  for (std::uint64_t seed = 1; seed <= instances; ++seed) {
    const SharingProblem sharing = RandomInstance(seed);
    const CompiledProblem problem = Compile(sharing);
    const FillingResult offline = SolveTsf(problem);

    // Online steady state: give every user an effectively infinite backlog
    // and let the greedy scheduler fill the empty cluster.
    std::vector<ResourceVector> capacity;
    for (MachineId m = 0; m < problem.num_machines; ++m)
      capacity.push_back(problem.machine_capacity[m]);
    OnlineScheduler scheduler(std::move(capacity), OnlinePolicy::Tsf());
    for (UserId i = 0; i < problem.num_users; ++i) {
      OnlineUserSpec spec;
      spec.demand = problem.demand[i];
      spec.eligible = problem.eligible[i];
      spec.weight = problem.weight[i];
      spec.h = problem.h[i];
      spec.g = problem.g[i];
      spec.pending = 1000000;
      scheduler.AddUser(std::move(spec));
    }
    for (MachineId m = 0; m < problem.num_machines; ++m)
      scheduler.ServeMachine(m, [](UserId, MachineId) {});

    double instance_gap = 0.0;
    double online_total = 0.0, offline_total = 0.0;
    for (UserId i = 0; i < problem.num_users; ++i) {
      const double online_share =
          static_cast<double>(scheduler.running(i)) /
          (problem.h[i] * problem.weight[i]);
      const double offline_share = offline.shares[i];
      const double gap = std::abs(online_share - offline_share) /
                         std::max(1e-9, offline_share);
      instance_gap += gap;
      online_total += static_cast<double>(scheduler.running(i));
      offline_total += offline.allocation.UserTasks(i);
    }
    instance_gap /= static_cast<double>(problem.num_users);
    gap_mean.Add(instance_gap);
    if (offline_total > 0) utilization_ratio.Add(online_total / offline_total);
    if (instance_gap > worst_gap) {
      worst_gap = instance_gap;
      worst_seed = seed;
    }
  }

  TextTable table({"metric", "value"});
  table.AddRow({"instances", std::to_string(instances)});
  table.AddRow({"mean relative share gap", TextTable::Percent(gap_mean.mean(), 1)});
  table.AddRow({"stddev of gap", TextTable::Percent(gap_mean.stddev(), 1)});
  table.AddRow({"worst-instance gap", TextTable::Percent(worst_gap, 1) +
                                          " (seed " + std::to_string(worst_seed) + ")"});
  table.AddRow({"online/offline total tasks", TextTable::Num(utilization_ratio.mean(), 3)});
  std::printf("%s", table.Format().c_str());
  std::printf("\nreading: the gap is the price of indivisible tasks and "
              "greedy first-fit\nplacement; it shrinks as machines get large "
              "relative to task demands.\n");
  return 0;
}

}  // namespace
}  // namespace tsf

int main(int argc, char** argv) { return tsf::Run(argc, argv); }
