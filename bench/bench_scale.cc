// Trace-scale end-to-end benchmark: 10k/100k-machine Google-style fleets
// pushed through the full DES, reporting placement throughput (tasks/sec)
// and peak RSS into BENCH_scale.json.
//
// Lanes (run in ascending memory-footprint order, because getrusage peak
// RSS is process-monotone — a big lane would mask every later one):
//
//   scale_smoke_10k_{collapsed,flat}  — 10k machines, ~80k tasks (CI lane)
//   scale_10k_{collapsed,flat}        — 10k machines, ~1M tasks
//   scale_100k_collapsed              — 100k machines, ~1M tasks
//
// The collapsed/flat pairs share one workload, so their items/sec ratio is
// the speedup of the equivalence-class engine over the legacy per-machine
// path (the placement streams are bit-identical — tests/ pins that; this
// binary only times them). --smoke keeps just the smoke pair; --flat_cluster
// is the escape hatch that forces every lane onto the flat path (and skips
// the 100k lane, which is only tractable collapsed).
//
// Unlike bench_perf_core this is a plain binary, not google-benchmark: each
// lane is minutes-scale, one iteration is statistically fine, and we need
// getrusage between lanes.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/online/policy.h"
#include "sim/des.h"
#include "trace/google.h"
#include "util/check.h"
#include "util/flags.h"

namespace tsf {
namespace {

double PeakRssMb() {
  struct rusage usage {};
  TSF_CHECK_EQ(getrusage(RUSAGE_SELF, &usage), 0);
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct LaneResult {
  std::string name;
  std::size_t machines = 0;
  std::size_t tasks = 0;
  double seconds = 0.0;
  double items_per_second = 0.0;
  double peak_rss_mb = 0.0;   // process peak at lane end (monotone)
  double rss_delta_mb = 0.0;  // growth during the lane
};

LaneResult RunLane(const std::string& name, const Workload& workload,
                   ClusterMode mode) {
  LaneResult lane;
  lane.name = name;
  lane.machines = workload.cluster.num_machines();
  lane.tasks = workload.TotalTasks();
  const double rss_before = PeakRssMb();
  SimOptions options;
  options.cluster_mode = mode;
  const auto start = std::chrono::steady_clock::now();
  const SimResult result =
      Simulate(workload, OnlinePolicy::Tsf(), SimCore::kIncremental, options);
  const auto stop = std::chrono::steady_clock::now();
  TSF_CHECK_EQ(result.tasks.size(), lane.tasks);
  lane.seconds = std::chrono::duration<double>(stop - start).count();
  lane.items_per_second = static_cast<double>(lane.tasks) / lane.seconds;
  lane.peak_rss_mb = PeakRssMb();
  lane.rss_delta_mb = lane.peak_rss_mb - rss_before;
  std::printf("%-26s %9zu machines %9zu tasks %8.2fs %12.0f tasks/s  rss %7.1f MB (+%.1f)\n",
              lane.name.c_str(), lane.machines, lane.tasks, lane.seconds,
              lane.items_per_second, lane.peak_rss_mb, lane.rss_delta_mb);
  std::fflush(stdout);
  return lane;
}

Workload MakeWorkload(std::size_t num_machines, std::size_t num_jobs,
                      std::uint64_t seed) {
  trace::GoogleTraceConfig config;
  config.num_machines = num_machines;
  config.num_jobs = num_jobs;
  // A profile menu keeps the fleet collapsible (~10 platforms x 8 profiles
  // of attribute sets); 0 would make nearly every machine unique at this
  // scale. See GoogleTraceConfig::num_attribute_profiles.
  config.num_attribute_profiles = 8;
  config.seed = seed;
  return trace::SynthesizeGoogleWorkload(config);
}

int Main(int argc, char** argv) {
  const Flags flags(
      argc, argv,
      {{"smoke", "run only the reduced-size 10k lanes (CI gate)"},
       {"flat_cluster", "force the legacy flat path on every lane (A/B hatch)"},
       {"out", "output JSON path (default BENCH_scale.json)"},
       {"seed", "workload seed (default 1)"}});
  const bool smoke = flags.GetBool("smoke", false);
  const bool flat_only = flags.GetBool("flat_cluster", false);
  const std::string out_path = flags.GetString("out", "BENCH_scale.json");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  // ~40 tasks/job on average: 2k jobs ~ 80k tasks (smoke), 25k jobs ~ 1M.
  constexpr std::size_t kSmokeJobs = 2000;
  constexpr std::size_t kFullJobs = 25000;

  std::vector<LaneResult> lanes;
  {
    const Workload smoke_workload = MakeWorkload(10000, kSmokeJobs, seed);
    if (!flat_only)
      lanes.push_back(RunLane("scale_smoke_10k_collapsed", smoke_workload,
                              ClusterMode::kCollapsed));
    lanes.push_back(
        RunLane("scale_smoke_10k_flat", smoke_workload, ClusterMode::kFlat));
  }
  if (!smoke) {
    const Workload full_workload = MakeWorkload(10000, kFullJobs, seed);
    if (!flat_only)
      lanes.push_back(RunLane("scale_10k_collapsed", full_workload,
                              ClusterMode::kCollapsed));
    lanes.push_back(
        RunLane("scale_10k_flat", full_workload, ClusterMode::kFlat));
    if (!flat_only) {
      const Workload huge_workload = MakeWorkload(100000, kFullJobs, seed);
      lanes.push_back(RunLane("scale_100k_collapsed", huge_workload,
                              ClusterMode::kCollapsed));
    }
  }

  // Collapsed-over-flat speedups for every lane pair that ran.
  auto find = [&](const std::string& name) -> const LaneResult* {
    for (const LaneResult& lane : lanes)
      if (lane.name == name) return &lane;
    return nullptr;
  };
  auto speedup = [&](const char* collapsed_name, const char* flat_name) {
    const LaneResult* c = find(collapsed_name);
    const LaneResult* f = find(flat_name);
    return (c != nullptr && f != nullptr)
               ? c->items_per_second / f->items_per_second
               : 0.0;
  };
  const double smoke_speedup =
      speedup("scale_smoke_10k_collapsed", "scale_smoke_10k_flat");
  const double full_speedup = speedup("scale_10k_collapsed", "scale_10k_flat");
  if (smoke_speedup > 0.0)
    std::printf("speedup (smoke 10k, collapsed vs flat): %.2fx\n", smoke_speedup);
  if (full_speedup > 0.0)
    std::printf("speedup (full 10k, collapsed vs flat):  %.2fx\n", full_speedup);

  std::ofstream out(out_path);
  TSF_CHECK(out.good()) << "cannot write " << out_path;
  out << "{\n  \"context\": {\n"
      << "    \"tsf_build_type\": \""
#ifdef NDEBUG
      << "release"
#else
      << "debug"
#endif
      << "\",\n    \"seed\": " << seed
      << ",\n    \"peak_rss_note\": \"ru_maxrss is process-monotone; lanes run"
         " in ascending footprint order and rss_delta_mb is the growth during"
         " the lane\"\n  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const LaneResult& lane = lanes[i];
    out << "    {\"name\": \"" << lane.name << "\", \"machines\": " << lane.machines
        << ", \"tasks\": " << lane.tasks << ", \"real_time\": " << lane.seconds
        << ", \"time_unit\": \"s\", \"items_per_second\": " << lane.items_per_second
        << ", \"peak_rss_mb\": " << lane.peak_rss_mb
        << ", \"rss_delta_mb\": " << lane.rss_delta_mb << "}"
        << (i + 1 < lanes.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedup_smoke_10k\": " << smoke_speedup
      << ",\n  \"speedup_full_10k\": " << full_speedup << "\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace tsf

int main(int argc, char** argv) { return tsf::Main(argc, argv); }
