// Table II + Fig. 5 (Sec. VI-A2): the Mesos micro-benchmark.
//
// Replays the four Table II jobs on the 50-node fleet (25x <1 CPU, 1 GB>,
// 25x <2 CPU, 1 GB>) under the TSF allocator and prints the CPU, memory,
// and task-share timelines that Fig. 5 plots. The paper's analytically
// derived plateaus: job1 share 1 -> 2/3 (when job2 arrives) -> 3/5 (when
// jobs 3 & 4 arrive); job2 at 1/2; jobs 3 & 4 equalized near 1/5.
#include <cstdio>

#include "bench_common.h"
#include "mesos/mesos.h"
#include "stats/table.h"
#include "util/flags.h"

namespace tsf {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "runtime-jitter RNG seed (default 1)"},
               {"sample-interval", "timeline sample period in seconds (default 5)"},
               {"jitter", "task runtime jitter fraction (default 0.2)"}});

  bench::PrintHeader(
      "Table II + Fig. 5 — TSF on the Mesos-like 50-node cluster",
      "Four jobs sharing the fleet; share timelines under the TSF allocator.");

  mesos::ClusterConfig config;
  config.slaves = mesos::PaperFleet();
  config.policy = mesos::AllocatorPolicy::kTsf;
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  config.sample_interval = flags.GetDouble("sample-interval", 5.0);

  std::vector<mesos::FrameworkSpec> jobs = mesos::TableTwoJobs();
  const double jitter = flags.GetDouble("jitter", 0.2);
  for (auto& job : jobs) job.runtime_jitter = jitter;

  bench::PrintSection("Table II job configurations");
  TextTable spec_table({"job", "start(s)", "#tasks", "CPU", "Mem(MB)",
                        "mean runtime(s)", "whitelisted nodes", "h_i"});
  const char* nodes_text[] = {"1-50", "1-25", "1-10,26-35", "1-10,26-35"};
  for (std::size_t f = 0; f < jobs.size(); ++f) {
    double h = 0;
    for (const auto& slave : config.slaves)
      h += slave.capacity.DivisibleTaskCount(jobs[f].demand);
    spec_table.AddRow({jobs[f].name, TextTable::Num(jobs[f].start_time, 0),
                       std::to_string(jobs[f].num_tasks),
                       TextTable::Num(jobs[f].demand[0], 1),
                       TextTable::Num(jobs[f].demand[1], 0),
                       TextTable::Num(jobs[f].mean_runtime, 1), nodes_text[f],
                       TextTable::Num(h, 0)});
  }
  std::printf("%s", spec_table.Format().c_str());

  const mesos::SimOutcome outcome = mesos::RunCluster(config, jobs);

  bench::PrintSection("Fig. 5 — share timelines (sampled)");
  TextTable timeline({"t(s)", "cpu1", "cpu2", "cpu3", "cpu4", "mem1", "mem2",
                      "mem3", "mem4", "task1", "task2", "task3", "task4"});
  // Downsample to ~40 rows regardless of the sample interval.
  const std::size_t stride =
      std::max<std::size_t>(1, outcome.timeline.size() / 40);
  for (std::size_t k = 0; k < outcome.timeline.size(); k += stride) {
    const mesos::SharePoint& point = outcome.timeline[k];
    std::vector<std::string> row = {TextTable::Num(point.time, 0)};
    for (const double v : point.cpu_share) row.push_back(TextTable::Num(v, 2));
    for (const double v : point.mem_share) row.push_back(TextTable::Num(v, 2));
    for (const double v : point.task_share) row.push_back(TextTable::Num(v, 2));
    timeline.AddRow(std::move(row));
  }
  std::printf("%s", timeline.Format().c_str());

  bench::PrintSection("completion summary");
  for (const auto& fw : outcome.frameworks)
    std::printf("  %s: first task %.1fs, completed %.1fs (duration %.1fs)\n",
                fw.name.c_str(), fw.first_task_time, fw.completion_time,
                fw.CompletionDuration());
  std::printf(
      "\npaper plateaus: job1 1 -> 2/3 -> 3/5; job2 1/2; jobs 3&4 ~1/5.\n");
  return 0;
}

}  // namespace
}  // namespace tsf

int main(int argc, char** argv) { return tsf::Run(argc, argv); }
