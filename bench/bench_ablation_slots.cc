// Ablation 4: slot scheduling vs multi-resource scheduling.
//
// The paper's opening argument (Sec. I): slot schedulers (Hadoop Fair /
// Capacity, and Choosy built on them) "suffer from poor utilization due to
// resource fragmentation — resources in these allocated slots, even when
// idle, are not available to the other tasks". This harness quantifies that
// on the same Google-like workload: a Choosy-style slot scheduler at
// several slot granularities against the multi-resource TSF scheduler.
#include <cstdio>

#include "bench_common.h"
#include "sim/slots.h"
#include "stats/cdf.h"
#include "stats/table.h"

namespace tsf {
namespace {

int Run(int argc, char** argv) {
  bench::PrintHeader(
      "Ablation — slot scheduler vs multi-resource scheduler",
      "Same workload under Choosy-style slots of several sizes and TSF.");
  const bench::MacroConfig config = bench::ParseMacroFlags(argc, argv);

  struct SlotChoice {
    const char* name;
    ResourceVector size;
  };
  const SlotChoice slot_sizes[] = {
      {"slots <1 core, 2 GB>", ResourceVector{1.0, 2.0}},
      {"slots <2 cores, 4 GB>", ResourceVector{2.0, 4.0}},
      {"slots <4 cores, 8 GB>", ResourceVector{4.0, 8.0}},
  };

  TextTable table({"scheduler", "makespan (s)", "mean task queue (s)",
                   "job compl p90 (s)", "held-slot waste", "dropped jobs"});

  for (std::uint64_t k = 0; k < config.seeds; ++k) {
    const std::uint64_t seed = config.first_seed + k;
    const Workload workload =
        trace::SynthesizeGoogleWorkload(bench::MakeTraceConfig(config, seed));

    auto add_row = [&](const std::string& name, const SimResult& sim,
                       double waste, std::size_t dropped) {
      EmpiricalCdf queue, completion;
      queue.AddAll(sim.TaskQueueingDelays());
      for (const JobRecord& job : sim.jobs)
        if (job.num_tasks > 0) completion.Add(job.CompletionTime());
      table.AddRow({name + " [seed " + std::to_string(seed) + "]",
                    TextTable::Num(sim.makespan, 0),
                    TextTable::Num(queue.Mean(), 1),
                    TextTable::Num(completion.Quantile(0.9), 1),
                    waste < 0 ? "-" : TextTable::Percent(waste, 1),
                    std::to_string(dropped)});
    };

    for (const SlotChoice& choice : slot_sizes) {
      SlotSchedulerConfig slot_config;
      slot_config.slot_size = choice.size;
      const SlotSimResult result = SimulateSlotScheduler(workload, slot_config);
      add_row(choice.name, result.sim, 1.0 - result.mean_used_fraction,
              result.dropped_jobs.size());
    }
    add_row("multi-resource TSF", Simulate(workload, OnlinePolicy::Tsf()), -1.0,
            0);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s", table.Format().c_str());
  std::printf("\nreading: 'held-slot waste' is the time-averaged fraction of "
              "slot resources\nreserved but not demanded by the occupying "
              "task — the fragmentation the\nmulti-resource scheduler "
              "eliminates. Coarser slots waste more and queue longer.\n");
  return 0;
}

}  // namespace
}  // namespace tsf

int main(int argc, char** argv) { return tsf::Run(argc, argv); }
