// Fig. 6 (Sec. VI-A3): TSF vs static partitioning.
//
// Experiment 1 confines each of four jobs to a dedicated pool (nodes 1-10 /
// 11-25 / 26-35 / 36-50); experiment 2 runs the same jobs shared under TSF
// with their true (wider) whitelists. The paper reports TSF finishing jobs
// up to ~22 % faster — Theorem 1's sharing incentive observed end to end.
#include <cstdio>

#include "bench_common.h"
#include "mesos/mesos.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "util/flags.h"

namespace tsf {
namespace {

std::vector<std::size_t> Nodes(int lo, int hi) {  // 1-based inclusive
  std::vector<std::size_t> ids;
  for (int n = lo; n <= hi; ++n) ids.push_back(static_cast<std::size_t>(n - 1));
  return ids;
}

// The four jobs: demands and runtimes follow Table II; jobs 1-2 can
// truthfully run on nodes 1-25, jobs 3-4 anywhere (Sec. VI-A3).
std::vector<mesos::FrameworkSpec> Jobs() {
  std::vector<mesos::FrameworkSpec> jobs = mesos::TableTwoJobs();
  for (auto& job : jobs) job.start_time = 0.0;
  jobs[0].whitelist = Nodes(1, 25);
  jobs[0].num_tasks = 250;  // scaled so all four finish in one experiment
  jobs[1].whitelist = Nodes(1, 25);
  jobs[2].whitelist = {};
  jobs[3].whitelist = {};
  return jobs;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv, {{"seeds", "jitter seeds to average (default 5)"}});
  const auto seeds = static_cast<std::uint64_t>(flags.GetInt("seeds", 5));

  bench::PrintHeader("Fig. 6 — completion time: static partitioning vs TSF",
                     "Four jobs; dedicated pools vs shared cluster under TSF.");

  const std::vector<std::vector<std::size_t>> pools = {
      Nodes(1, 10), Nodes(11, 25), Nodes(26, 35), Nodes(36, 50)};

  std::vector<Summary> static_time(4), tsf_time(4);
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    mesos::ClusterConfig config;
    config.slaves = mesos::PaperFleet();
    config.policy = mesos::AllocatorPolicy::kTsf;
    config.sample_interval = 0.0;
    config.seed = seed;

    // Experiment 1: each job restricted to its dedicated pool.
    std::vector<mesos::FrameworkSpec> penned = Jobs();
    for (std::size_t f = 0; f < penned.size(); ++f)
      penned[f].whitelist = pools[f];
    const mesos::SimOutcome static_outcome = mesos::RunCluster(config, penned);

    // Experiment 2: same jobs, true whitelists, shared under TSF with the
    // Theorem-1 weights w_i = k_i / h_i derived from the dedicated pools —
    // the setting in which TSF guarantees no job regresses.
    std::vector<mesos::FrameworkSpec> shared = Jobs();
    for (std::size_t f = 0; f < shared.size(); ++f) {
      double k = 0.0, h = 0.0;
      for (std::size_t s = 0; s < config.slaves.size(); ++s)
        h += config.slaves[s].capacity.DivisibleTaskCount(shared[f].demand);
      for (const std::size_t s : pools[f])
        k += config.slaves[s].capacity.DivisibleTaskCount(shared[f].demand);
      shared[f].weight = k / h;
    }
    const mesos::SimOutcome shared_outcome = mesos::RunCluster(config, shared);

    for (std::size_t f = 0; f < 4; ++f) {
      static_time[f].Add(static_outcome.frameworks[f].CompletionDuration());
      tsf_time[f].Add(shared_outcome.frameworks[f].CompletionDuration());
    }
  }

  TextTable table({"job", "static (s)", "TSF shared (s)", "speedup"});
  for (std::size_t f = 0; f < 4; ++f) {
    const double speedup =
        (static_time[f].mean() - tsf_time[f].mean()) / static_time[f].mean();
    table.AddRow({"job" + std::to_string(f + 1),
                  TextTable::Num(static_time[f].mean(), 1),
                  TextTable::Num(tsf_time[f].mean(), 1),
                  TextTable::Percent(speedup, 1)});
  }
  std::printf("%s", table.Format().c_str());
  std::printf("\npaper: TSF speeds up completion by up to 22%% over static "
              "partitioning;\nno job should finish meaningfully later than "
              "its dedicated pool (Thm. 1).\n");
  return 0;
}

}  // namespace
}  // namespace tsf

int main(int argc, char** argv) { return tsf::Run(argc, argv); }
