// Fig. 3 (Sec. IV-B3): constrained CDRF is not envy-free.
//
// Three 3-CPU machines, seven unit-demand users; CDRF gives the flexible
// user u2 three tasks (two on m1), so u1 — pinned to m1 with one task —
// envies u2. TSF's allocation on the same instance is envy-free.
#include <cstdio>

#include "bench_common.h"
#include "core/offline/policies.h"
#include "core/offline/properties.h"
#include "core/paper_examples.h"

namespace tsf {
namespace {

void Report(const char* name, const CompiledProblem& problem,
            const FillingResult& result) {
  bench::PrintSection(name);
  std::printf("%s", result.allocation.ToString(problem).c_str());
  if (const auto envy = FindEnvy(problem, result.allocation)) {
    std::printf(
        "ENVY: u%zu envies u%zu — own %.2f tasks vs %.2f from the exchange\n",
        envy->envious + 1, envy->envied + 1, envy->own_tasks,
        envy->exchanged_tasks);
  } else {
    std::printf("envy-free\n");
  }
}

int Run() {
  bench::PrintHeader(
      "Fig. 3 — constrained CDRF is not envy-free",
      "Three 3-CPU machines; u1->m1, u2->any, u3,u4->m2, u5..u7->m3.");
  const CompiledProblem problem = Compile(paper::Fig3());
  Report("constrained CDRF (paper: u1 envies u2, 1 vs 2 tasks)", problem,
         SolveCdrf(problem));
  Report("TSF on the same instance", problem, SolveTsf(problem));
  return 0;
}

}  // namespace
}  // namespace tsf

int main() { return tsf::Run(); }
