// Fig. 10 (Sec. VI-B2): per-job completion speedup of TSF over the four
// alternative fair policies, binned by job size (small <=10, medium 11-100,
// big 101-500, huge >500 tasks), with +/- one standard deviation.
//
// Expected shape: negligible for small jobs (every fair policy serves mice
// first), growing with job size (~10 % for medium/big), and high-variance
// for huge jobs (both speedups and slowdowns occur).
#include <cstdio>

#include "bench_common.h"
#include "sim/runner.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace tsf {
namespace {

constexpr const char* kBinNames[] = {"small (<=10)", "medium (11-100)",
                                     "big (101-500)", "huge (>500)"};

std::size_t BinOf(long tasks) {
  if (tasks <= 10) return 0;
  if (tasks <= 100) return 1;
  if (tasks <= 500) return 2;
  return 3;
}

int Run(int argc, char** argv) {
  bench::PrintHeader(
      "Fig. 10 — per-job completion speedup of TSF over alternatives",
      "Relative speedup (T_alt - T_tsf) / T_alt, binned by job size.");
  const bench::MacroConfig config = bench::ParseMacroFlags(argc, argv);
  // FIFO excluded: Fig. 10 compares fair policies only.
  const std::vector<OnlinePolicy> policies = bench::FairPolicies();
  const std::size_t num_alternatives = policies.size() - 1;  // TSF is last

  // speedups[alt][bin]
  std::vector<std::vector<Summary>> speedups(
      num_alternatives, std::vector<Summary>(4));

  ThreadPool pool(config.threads);
  RunSeeds(
      [&config](std::uint64_t seed) {
        return trace::SynthesizeGoogleWorkload(bench::MakeTraceConfig(config, seed));
      },
      policies, config.first_seed, config.seeds, pool,
      [&](std::uint64_t seed, const std::vector<SimResult>& results) {
        const SimResult& tsf = results.back();
        for (std::size_t alt = 0; alt < num_alternatives; ++alt) {
          for (std::size_t j = 0; j < tsf.jobs.size(); ++j) {
            const double t_alt = results[alt].jobs[j].CompletionTime();
            const double t_tsf = tsf.jobs[j].CompletionTime();
            if (t_alt <= 0.0) continue;
            speedups[alt][BinOf(tsf.jobs[j].num_tasks)].Add((t_alt - t_tsf) /
                                                            t_alt);
          }
        }
        bench::MaybeWriteFairnessTimelines(config, policies, seed, results);
        std::printf(".");
        std::fflush(stdout);
      },
      config.sim_options());
  std::printf("\n");

  bench::PrintSection("mean relative speedup of TSF (+/- one stddev)");
  TextTable table({"job size bin", "vs DRF", "vs CDRF", "vs CPU", "vs Mem"});
  for (std::size_t bin = 0; bin < 4; ++bin) {
    std::vector<std::string> row = {kBinNames[bin]};
    for (std::size_t alt = 0; alt < num_alternatives; ++alt) {
      const Summary& s = speedups[alt][bin];
      row.push_back(TextTable::Percent(s.mean(), 1) + " +/- " +
                    TextTable::Percent(s.stddev(), 1));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.Format().c_str());
  std::printf("\npaper: ~0 for small jobs; ~10%% and almost-certain for "
              "medium/big; mixed sign\nwith wide error bars for huge jobs.\n");
  return 0;
}

}  // namespace
}  // namespace tsf

int main(int argc, char** argv) { return tsf::Run(argc, argv); }
